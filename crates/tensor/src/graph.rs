//! Define-by-run reverse-mode automatic differentiation over [`Matrix`]
//! values.
//!
//! A [`Graph`] is a tape of nodes; every builder method evaluates its result
//! eagerly and records the operation so that [`Graph::backward`] can sweep the
//! tape in reverse and accumulate gradients. The op set is intentionally the
//! minimal closure needed to express the SBRL-HAP losses: dense layers,
//! activations, weighted integral probability metrics (including a
//! differentiable Sinkhorn loop) and the weighted HSIC-RFF decorrelation
//! penalty.
//!
//! The tape is **reusable**: [`Graph::reset`] clears the recorded nodes but
//! parks every value/gradient buffer in an internal shape-keyed
//! [`BufferPool`], so the next step's forward and backward passes write into
//! recycled memory instead of allocating. A warmed-up training loop that
//! resets one graph per step performs no heap allocation at all, and every
//! number it produces is bit-identical to a loop that builds a fresh
//! [`Graph::new`] per step (same arithmetic, different memory).
//!
//! Typical use (one optimisation step = one reset):
//!
//! ```
//! use sbrl_tensor::{Graph, Matrix};
//!
//! let mut g = Graph::new();
//! for _step in 0..3 {
//!     g.reset(); // no-op on the first pass, recycles buffers afterwards
//!     let x = g.constant(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
//!     let w = g.param(Matrix::ones(2, 1));
//!     let y = g.matmul(x, w);
//!     let sq = g.square(y);
//!     let loss = g.mean(sq);
//!     g.backward(loss);
//!     let grad_w = g.grad(w).expect("param gradient");
//!     assert_eq!(grad_w.shape(), (2, 1));
//! }
//! ```

use crate::matrix::Matrix;
use crate::pool::BufferPool;

/// Handle to a node in a [`Graph`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct TensorId(pub(crate) usize);

/// The primitive operations the tape understands.
///
/// Gather ops reference index lists interned in the graph's arena (see
/// [`Graph::intern_indices`]) so that recording them is allocation-free on a
/// warmed-up tape.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Op {
    /// Input node (parameter or constant).
    Leaf,
    Add(TensorId, TensorId),
    Sub(TensorId, TensorId),
    Mul(TensorId, TensorId),
    Div(TensorId, TensorId),
    MatMul(TensorId, TensorId),
    Transpose(TensorId),
    /// `(n x m) + (1 x m)` row broadcast.
    AddRow(TensorId, TensorId),
    /// `(n x m) + (n x 1)` column broadcast.
    AddCol(TensorId, TensorId),
    /// `(n x m) * (1 x m)` row broadcast.
    MulRow(TensorId, TensorId),
    /// `(n x m) * (n x 1)` column broadcast.
    MulCol(TensorId, TensorId),
    /// `(n x 1) + (1 x m) -> n x m` outer sum (pairwise-distance helper).
    ColPlusRow(TensorId, TensorId),
    Neg(TensorId),
    Exp(TensorId),
    Ln(TensorId),
    Sqrt(TensorId),
    Cos(TensorId),
    Sin(TensorId),
    Tanh(TensorId),
    Sigmoid(TensorId),
    Softplus(TensorId),
    Relu(TensorId),
    Elu(TensorId, f64),
    Square(TensorId),
    Abs(TensorId),
    Powf(TensorId, f64),
    Recip(TensorId),
    Scale(TensorId, f64),
    AddScalar(TensorId),
    Clamp(TensorId, f64, f64),
    /// Sum of all elements -> `1 x 1`.
    Sum(TensorId),
    /// Mean of all elements -> `1 x 1`.
    Mean(TensorId),
    /// Column sums -> `1 x m`.
    SumAxis0(TensorId),
    /// Column means -> `1 x m`.
    MeanAxis0(TensorId),
    /// Row sums -> `n x 1`.
    SumAxis1(TensorId),
    /// Row means -> `n x 1`.
    MeanAxis1(TensorId),
    /// Row gather (indices may repeat); backward scatter-adds. The second
    /// field indexes the graph's interned index-list arena.
    GatherRows(TensorId, usize),
    /// Column gather (indices may repeat); backward scatter-adds.
    GatherCols(TensorId, usize),
    ConcatCols(TensorId, TensorId),
    SliceCols(TensorId, usize, usize),
    /// `post_scale * cos(omega * x + phi)` — the fused random-Fourier
    /// feature map step (bit-identical to the `scale`/`add_scalar`/`cos`/
    /// `scale` chain it replaces, at a quarter of the tape traffic).
    CosAffine(TensorId, f64, f64, f64),
    /// Full random-Fourier feature matrix `[s cos(w_1 z + p_1) | ... |
    /// s cos(w_k z + p_k)]` built in one pass — the fused form of `k`
    /// [`Op::CosAffine`] blocks plus the left-nested `concat_cols` chain,
    /// with identical per-element arithmetic and gradient accumulation
    /// order. Fields: `(input, coefficient-list id, post_scale)`.
    RffFeatures(TensorId, usize, f64),
    /// Sum of squares of all elements -> `1 x 1` (fused `square` + `sum`).
    SumSq(TensorId),
    /// Block-masked sum of squares over a `kd x kd` matrix -> `1 x 1`:
    /// entry `(p, q)` is multiplied by `1.0` when `(p % d == q % d)` equals
    /// `keep_diagonal` and by `0.0` otherwise (so `true` keeps only the
    /// block diagonal, `false` keeps everything else), then squared and
    /// folded in slice order — the fused form of the HSIC block mask
    /// (`constant` mask, `mul`, `square`, `sum`) chain, with identical
    /// arithmetic and none of the mask traffic. Fields:
    /// `(input, d, keep_diagonal)`.
    BlockMaskedSumSq(TensorId, usize, bool),
    /// `a^T * b` without materialising the transpose (fused `transpose` +
    /// `matmul`; same accumulation order and exact-zero skip).
    MatMulTn(TensorId, TensorId),
    /// Multiply every element by the single value of a `1 x 1` node.
    MulScalarOf(TensorId, TensorId),
    /// Divide every element by the single value of a `1 x 1` node.
    DivScalarOf(TensorId, TensorId),
}

pub(crate) struct Node {
    pub(crate) value: Matrix,
    pub(crate) grad: Option<Matrix>,
    pub(crate) op: Op,
    pub(crate) requires_grad: bool,
}

/// A reverse-mode autodiff tape with a shape-keyed buffer pool.
#[derive(Default)]
pub struct Graph {
    pub(crate) nodes: Vec<Node>,
    pool: BufferPool,
    /// Index lists referenced by gather ops, recycled across resets.
    idx_lists: Vec<Vec<usize>>,
    free_idx_lists: Vec<Vec<usize>>,
    /// `(omega, phi)` lists referenced by [`Op::RffFeatures`] nodes.
    coef_lists: Vec<Vec<(f64, f64)>>,
    free_coef_lists: Vec<Vec<(f64, f64)>>,
    /// Recycled `Vec<TensorId>` scratch buffers (layer-tap lists etc.).
    free_id_bufs: Vec<Vec<TensorId>>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self { nodes: Vec::with_capacity(256), ..Self::default() }
    }

    /// Number of nodes recorded so far.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Clears the tape for the next step, parking every node's value and
    /// gradient buffer (and the gather index lists) for reuse.
    ///
    /// After a warm-up step with the same shapes, subsequent steps allocate
    /// nothing; results are bit-identical to using a fresh [`Graph::new`].
    pub fn reset(&mut self) {
        for node in self.nodes.drain(..) {
            self.pool.give(node.value);
            if let Some(gm) = node.grad {
                self.pool.give(gm);
            }
        }
        for mut list in self.idx_lists.drain(..) {
            list.clear();
            self.free_idx_lists.push(list);
        }
        for mut list in self.coef_lists.drain(..) {
            list.clear();
            self.free_coef_lists.push(list);
        }
    }

    /// Number of buffers parked in the tape's pool (observability hook for
    /// the allocation probe and tests).
    pub fn pooled_buffers(&self) -> usize {
        self.pool.parked()
    }

    /// Takes a `rows x cols` buffer from the tape's pool. Contents are
    /// **unspecified**; overwrite every element before handing the matrix to
    /// [`Graph::constant`] / [`Graph::param`] (the usual use: build a leaf
    /// value in place without allocating).
    pub fn take_buffer(&mut self, rows: usize, cols: usize) -> Matrix {
        self.pool.take(rows, cols)
    }

    /// Takes a recycled `Vec<TensorId>` scratch buffer (cleared). Callers
    /// that want allocation-free steady-state steps should hand it back via
    /// [`Graph::give_id_buf`] when done; dropping it instead is safe but
    /// allocates again next time.
    pub fn take_id_buf(&mut self) -> Vec<TensorId> {
        let mut buf = self.free_id_bufs.pop().unwrap_or_default();
        buf.clear();
        buf
    }

    /// Parks a `Vec<TensorId>` scratch buffer for reuse.
    pub fn give_id_buf(&mut self, buf: Vec<TensorId>) {
        self.free_id_bufs.push(buf);
    }

    /// Interns an index list in the tape's arena and returns its slot.
    fn intern_indices(&mut self, idx: &[usize]) -> usize {
        let mut list = self.free_idx_lists.pop().unwrap_or_default();
        list.clear();
        list.extend_from_slice(idx);
        self.idx_lists.push(list);
        self.idx_lists.len() - 1
    }

    /// Interns an `(omega, phi)` coefficient list and returns its slot.
    fn intern_coefs(&mut self, coefs: &[(f64, f64)]) -> usize {
        let mut list = self.free_coef_lists.pop().unwrap_or_default();
        list.clear();
        list.extend_from_slice(coefs);
        self.coef_lists.push(list);
        self.coef_lists.len() - 1
    }

    /// Pool buffer shaped like an existing node's value.
    fn take_like(&mut self, id: TensorId) -> Matrix {
        let (r, c) = self.nodes[id.0].value.shape();
        self.pool.take(r, c)
    }

    fn push(&mut self, value: Matrix, op: Op, requires_grad: bool) -> TensorId {
        self.nodes.push(Node { value, grad: None, op, requires_grad });
        TensorId(self.nodes.len() - 1)
    }

    /// Inserts a constant leaf (no gradient is accumulated into it).
    pub fn constant(&mut self, value: Matrix) -> TensorId {
        self.push(value, Op::Leaf, false)
    }

    /// Inserts a trainable leaf; its gradient is available after
    /// [`Graph::backward`].
    pub fn param(&mut self, value: Matrix) -> TensorId {
        self.push(value, Op::Leaf, true)
    }

    /// Inserts a constant leaf by copying `value` into a pooled buffer
    /// (allocation-free once warm).
    pub fn constant_copied(&mut self, value: &Matrix) -> TensorId {
        let mut buf = self.pool.take(value.rows(), value.cols());
        buf.copy_from(value);
        self.push(buf, Op::Leaf, false)
    }

    /// Inserts a trainable leaf by copying `value` into a pooled buffer.
    pub fn param_copied(&mut self, value: &Matrix) -> TensorId {
        let mut buf = self.pool.take(value.rows(), value.cols());
        buf.copy_from(value);
        self.push(buf, Op::Leaf, true)
    }

    /// Inserts an `n x 1` constant column from a slice (pooled).
    pub fn constant_col(&mut self, values: &[f64]) -> TensorId {
        let mut buf = self.pool.take(values.len(), 1);
        buf.as_mut_slice().copy_from_slice(values);
        self.push(buf, Op::Leaf, false)
    }

    /// Inserts a `rows x cols` constant filled with `v` (pooled).
    pub fn constant_full(&mut self, rows: usize, cols: usize, v: f64) -> TensorId {
        let mut buf = self.pool.take(rows, cols);
        buf.fill_with(v);
        self.push(buf, Op::Leaf, false)
    }

    /// Inserts a constant leaf holding the listed rows of `src` (pooled;
    /// indices may repeat). Equivalent to `constant(src.select_rows(idx))`
    /// without the intermediate allocation.
    #[track_caller]
    pub fn constant_selected_rows(&mut self, src: &Matrix, idx: &[usize]) -> TensorId {
        let mut buf = self.pool.take(idx.len(), src.cols());
        for (k, &i) in idx.iter().enumerate() {
            buf.row_mut(k).copy_from_slice(src.row(i));
        }
        self.push(buf, Op::Leaf, false)
    }

    /// Inserts a `1 x 1` constant.
    pub fn scalar_const(&mut self, v: f64) -> TensorId {
        let mut buf = self.pool.take(1, 1);
        buf.as_mut_slice()[0] = v;
        self.constant(buf)
    }

    /// Value of a node.
    pub fn value(&self, id: TensorId) -> &Matrix {
        &self.nodes[id.0].value
    }

    /// The single value of a `1 x 1` node.
    #[track_caller]
    pub fn scalar(&self, id: TensorId) -> f64 {
        self.nodes[id.0].value.item()
    }

    /// Gradient of a node, if it was reached by the last backward sweep.
    pub fn grad(&self, id: TensorId) -> Option<&Matrix> {
        self.nodes[id.0].grad.as_ref()
    }

    #[inline]
    fn requires(&self, id: TensorId) -> bool {
        self.nodes[id.0].requires_grad
    }

    fn unary(&mut self, a: TensorId, value: Matrix, op: Op) -> TensorId {
        let rg = self.requires(a);
        self.push(value, op, rg)
    }

    fn binary(&mut self, a: TensorId, b: TensorId, value: Matrix, op: Op) -> TensorId {
        let rg = self.requires(a) || self.requires(b);
        self.push(value, op, rg)
    }

    // ----- elementwise binary ops -------------------------------------------------

    /// Elementwise `a + b` (same shapes).
    #[track_caller]
    pub fn add(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let mut v = self.take_like(a);
        v.fill_zip(&self.nodes[a.0].value, &self.nodes[b.0].value, |x, y| x + y);
        self.binary(a, b, v, Op::Add(a, b))
    }

    /// Elementwise `a - b` (same shapes).
    #[track_caller]
    pub fn sub(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let mut v = self.take_like(a);
        v.fill_zip(&self.nodes[a.0].value, &self.nodes[b.0].value, |x, y| x - y);
        self.binary(a, b, v, Op::Sub(a, b))
    }

    /// Elementwise `a * b` (same shapes).
    #[track_caller]
    pub fn mul(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let mut v = self.take_like(a);
        v.fill_zip(&self.nodes[a.0].value, &self.nodes[b.0].value, |x, y| x * y);
        self.binary(a, b, v, Op::Mul(a, b))
    }

    /// Elementwise `a / b` (same shapes).
    #[track_caller]
    pub fn div(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let mut v = self.take_like(a);
        v.fill_zip(&self.nodes[a.0].value, &self.nodes[b.0].value, |x, y| x / y);
        self.binary(a, b, v, Op::Div(a, b))
    }

    // ----- linear algebra ---------------------------------------------------------

    /// Matrix product `a * b`.
    #[track_caller]
    pub fn matmul(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let (m, n) = (self.nodes[a.0].value.rows(), self.nodes[b.0].value.cols());
        let mut v = self.pool.take(m, n);
        crate::kernels::gemm_into(
            &self.nodes[a.0].value,
            &self.nodes[b.0].value,
            &mut v,
            crate::kernels::Parallelism::global(),
        );
        self.binary(a, b, v, Op::MatMul(a, b))
    }

    /// Matrix product `a^T * b` without materialising the transpose — a
    /// fused `transpose` + `matmul` with the same per-element accumulation
    /// order and exact-zero skip, so results are bit-identical to the
    /// two-op chain while skipping the transposed copy.
    #[track_caller]
    pub fn matmul_tn(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let (m, n) = (self.nodes[a.0].value.cols(), self.nodes[b.0].value.cols());
        let mut v = self.pool.take(m, n);
        crate::kernels::gemm_tn_into(
            &self.nodes[a.0].value,
            &self.nodes[b.0].value,
            &mut v,
            crate::kernels::Parallelism::global(),
        );
        self.binary(a, b, v, Op::MatMulTn(a, b))
    }

    /// Transpose.
    pub fn transpose(&mut self, a: TensorId) -> TensorId {
        let (r, c) = self.nodes[a.0].value.shape();
        let mut v = self.pool.take(c, r);
        v.transpose_from(&self.nodes[a.0].value);
        self.unary(a, v, Op::Transpose(a))
    }

    // ----- broadcasts -------------------------------------------------------------

    /// Adds a `1 x m` row vector to every row of an `n x m` matrix.
    #[track_caller]
    pub fn add_row(&mut self, a: TensorId, row: TensorId) -> TensorId {
        let (ar, ac) = self.nodes[a.0].value.shape();
        let (rr, rc) = self.nodes[row.0].value.shape();
        assert!(rr == 1 && rc == ac, "add_row: {ar}x{ac} + {rr}x{rc}");
        let mut v = self.take_like(a);
        let av = &self.nodes[a.0].value;
        let rv = self.nodes[row.0].value.as_slice();
        for i in 0..ar {
            for ((x, &s), &r) in v.row_mut(i).iter_mut().zip(av.row(i)).zip(rv) {
                *x = s + r;
            }
        }
        self.binary(a, row, v, Op::AddRow(a, row))
    }

    /// Adds an `n x 1` column vector to every column of an `n x m` matrix.
    #[track_caller]
    pub fn add_col(&mut self, a: TensorId, col: TensorId) -> TensorId {
        let (ar, ac) = self.nodes[a.0].value.shape();
        let (cr, cc) = self.nodes[col.0].value.shape();
        assert!(cc == 1 && cr == ar, "add_col: {ar}x{ac} + {cr}x{cc}");
        let mut v = self.take_like(a);
        let av = &self.nodes[a.0].value;
        let cv = self.nodes[col.0].value.as_slice();
        for (i, &c) in cv.iter().enumerate() {
            for (x, &s) in v.row_mut(i).iter_mut().zip(av.row(i)) {
                *x = s + c;
            }
        }
        self.binary(a, col, v, Op::AddCol(a, col))
    }

    /// Multiplies every row of an `n x m` matrix by a `1 x m` row vector.
    #[track_caller]
    pub fn mul_row(&mut self, a: TensorId, row: TensorId) -> TensorId {
        let (ar, ac) = self.nodes[a.0].value.shape();
        let (rr, rc) = self.nodes[row.0].value.shape();
        assert!(rr == 1 && rc == ac, "mul_row: {ar}x{ac} * {rr}x{rc}");
        let mut v = self.take_like(a);
        let av = &self.nodes[a.0].value;
        let rv = self.nodes[row.0].value.as_slice();
        for i in 0..ar {
            for ((x, &s), &r) in v.row_mut(i).iter_mut().zip(av.row(i)).zip(rv) {
                *x = s * r;
            }
        }
        self.binary(a, row, v, Op::MulRow(a, row))
    }

    /// Multiplies every column of an `n x m` matrix by an `n x 1` column
    /// vector (row-wise scaling, e.g. by sample weights).
    #[track_caller]
    pub fn mul_col(&mut self, a: TensorId, col: TensorId) -> TensorId {
        let (ar, ac) = self.nodes[a.0].value.shape();
        let (cr, cc) = self.nodes[col.0].value.shape();
        assert!(cc == 1 && cr == ar, "mul_col: {ar}x{ac} * {cr}x{cc}");
        let mut v = self.take_like(a);
        let av = &self.nodes[a.0].value;
        let cv = self.nodes[col.0].value.as_slice();
        for (i, &c) in cv.iter().enumerate() {
            for (x, &s) in v.row_mut(i).iter_mut().zip(av.row(i)) {
                *x = s * c;
            }
        }
        self.binary(a, col, v, Op::MulCol(a, col))
    }

    /// Outer sum of an `n x 1` column and a `1 x m` row -> `n x m`.
    #[track_caller]
    pub fn col_plus_row(&mut self, col: TensorId, row: TensorId) -> TensorId {
        let (cr, cc) = self.nodes[col.0].value.shape();
        let (rr, rc) = self.nodes[row.0].value.shape();
        assert!(cc == 1 && rr == 1, "col_plus_row: {cr}x{cc} (+) {rr}x{rc}");
        let mut v = self.pool.take(cr, rc);
        let cv = self.nodes[col.0].value.as_slice();
        let rv = self.nodes[row.0].value.as_slice();
        for (i, &c) in cv.iter().enumerate() {
            for (x, &r) in v.row_mut(i).iter_mut().zip(rv) {
                *x = c + r;
            }
        }
        self.binary(col, row, v, Op::ColPlusRow(col, row))
    }

    // ----- elementwise unary ops --------------------------------------------------

    /// Pool-backed elementwise map over a node's value.
    fn unary_map(&mut self, a: TensorId, op: Op, f: impl Fn(f64) -> f64 + Sync) -> TensorId {
        let mut v = self.take_like(a);
        v.fill_map(&self.nodes[a.0].value, f);
        self.unary(a, v, op)
    }

    /// Elementwise negation.
    pub fn neg(&mut self, a: TensorId) -> TensorId {
        self.unary_map(a, Op::Neg(a), |x| -x)
    }

    /// Elementwise `exp`.
    pub fn exp(&mut self, a: TensorId) -> TensorId {
        self.unary_map(a, Op::Exp(a), f64::exp)
    }

    /// Elementwise natural logarithm.
    pub fn ln(&mut self, a: TensorId) -> TensorId {
        self.unary_map(a, Op::Ln(a), f64::ln)
    }

    /// Elementwise square root.
    pub fn sqrt(&mut self, a: TensorId) -> TensorId {
        self.unary_map(a, Op::Sqrt(a), f64::sqrt)
    }

    /// Elementwise cosine.
    pub fn cos(&mut self, a: TensorId) -> TensorId {
        self.unary_map(a, Op::Cos(a), f64::cos)
    }

    /// Elementwise sine.
    pub fn sin(&mut self, a: TensorId) -> TensorId {
        self.unary_map(a, Op::Sin(a), f64::sin)
    }

    /// Elementwise hyperbolic tangent.
    pub fn tanh(&mut self, a: TensorId) -> TensorId {
        self.unary_map(a, Op::Tanh(a), f64::tanh)
    }

    /// Elementwise logistic sigmoid (numerically stable).
    pub fn sigmoid(&mut self, a: TensorId) -> TensorId {
        self.unary_map(a, Op::Sigmoid(a), stable_sigmoid)
    }

    /// Elementwise softplus `ln(1 + e^x)` (numerically stable).
    pub fn softplus(&mut self, a: TensorId) -> TensorId {
        self.unary_map(a, Op::Softplus(a), stable_softplus)
    }

    /// Elementwise rectified linear unit.
    pub fn relu(&mut self, a: TensorId) -> TensorId {
        self.unary_map(a, Op::Relu(a), |x| x.max(0.0))
    }

    /// Elementwise exponential linear unit with slope `alpha`.
    pub fn elu(&mut self, a: TensorId, alpha: f64) -> TensorId {
        self.unary_map(a, Op::Elu(a, alpha), |x| if x > 0.0 { x } else { alpha * (x.exp() - 1.0) })
    }

    /// Elementwise square.
    pub fn square(&mut self, a: TensorId) -> TensorId {
        self.unary_map(a, Op::Square(a), |x| x * x)
    }

    /// Elementwise absolute value.
    pub fn abs(&mut self, a: TensorId) -> TensorId {
        self.unary_map(a, Op::Abs(a), f64::abs)
    }

    /// Elementwise power with a constant exponent.
    pub fn powf(&mut self, a: TensorId, p: f64) -> TensorId {
        self.unary_map(a, Op::Powf(a, p), |x| x.powf(p))
    }

    /// Elementwise reciprocal.
    pub fn recip(&mut self, a: TensorId) -> TensorId {
        self.unary_map(a, Op::Recip(a), f64::recip)
    }

    /// Multiplies every element by the constant `s`.
    pub fn scale(&mut self, a: TensorId, s: f64) -> TensorId {
        self.unary_map(a, Op::Scale(a, s), |x| x * s)
    }

    /// Adds the constant `s` to every element.
    pub fn add_scalar(&mut self, a: TensorId, s: f64) -> TensorId {
        self.unary_map(a, Op::AddScalar(a), |x| x + s)
    }

    /// Clamps every element into `[lo, hi]`; gradient is zero outside.
    pub fn clamp(&mut self, a: TensorId, lo: f64, hi: f64) -> TensorId {
        self.unary_map(a, Op::Clamp(a, lo, hi), |x| x.clamp(lo, hi))
    }

    /// Fused affine-cosine `post_scale * cos(omega * x + phi)` — one tape
    /// node and one pass instead of the historical four-op
    /// `scale`/`add_scalar`/`cos`/`scale` chain, with identical per-element
    /// arithmetic (used by the HSIC-RFF feature map).
    pub fn cos_affine(&mut self, a: TensorId, omega: f64, phi: f64, post_scale: f64) -> TensorId {
        self.unary_map(a, Op::CosAffine(a, omega, phi, post_scale), |x| {
            (x * omega + phi).cos() * post_scale
        })
    }

    /// Full random-Fourier feature matrix: for an `n x d` input and `k`
    /// coefficient pairs, the `n x (k*d)` matrix whose block `i` is
    /// `post_scale * cos(omega_i * z + phi_i)` — one tape node instead of
    /// `k` [`Graph::cos_affine`] blocks chained through
    /// [`Graph::concat_cols`], with identical values and gradients.
    ///
    /// # Panics
    /// Panics if `coefs` is empty.
    #[track_caller]
    pub fn rff_features(&mut self, a: TensorId, coefs: &[(f64, f64)], post_scale: f64) -> TensorId {
        assert!(!coefs.is_empty(), "rff_features: need at least one (omega, phi) pair");
        let (n, d) = self.nodes[a.0].value.shape();
        let k = coefs.len();
        let mut v = self.pool.take(n, k * d);
        {
            let av = &self.nodes[a.0].value;
            for r in 0..n {
                let src = av.row(r);
                let dst = v.row_mut(r);
                for (i, &(omega, phi)) in coefs.iter().enumerate() {
                    for (o, &x) in dst[i * d..(i + 1) * d].iter_mut().zip(src) {
                        *o = (x * omega + phi).cos() * post_scale;
                    }
                }
            }
        }
        let list = self.intern_coefs(coefs);
        self.unary(a, v, Op::RffFeatures(a, list, post_scale))
    }

    // ----- reductions ---------------------------------------------------------

    fn scalar_node(&mut self, a: TensorId, value: f64, op: Op) -> TensorId {
        let mut v = self.pool.take(1, 1);
        v.as_mut_slice()[0] = value;
        self.unary(a, v, op)
    }

    /// Sum of all elements (`1 x 1`).
    pub fn sum(&mut self, a: TensorId) -> TensorId {
        let s = self.nodes[a.0].value.sum();
        self.scalar_node(a, s, Op::Sum(a))
    }

    /// Mean of all elements (`1 x 1`).
    pub fn mean(&mut self, a: TensorId) -> TensorId {
        let m = self.nodes[a.0].value.mean();
        self.scalar_node(a, m, Op::Mean(a))
    }

    /// Column sums into a pooled `1 x cols` buffer (accumulation order
    /// matches [`Matrix::sum_axis0`] bit for bit).
    fn fill_col_sums(&mut self, a: TensorId) -> Matrix {
        col_sums_of(&mut self.pool, &self.nodes[a.0].value)
    }

    /// Column sums (`1 x m`).
    pub fn sum_axis0(&mut self, a: TensorId) -> TensorId {
        let v = self.fill_col_sums(a);
        self.unary(a, v, Op::SumAxis0(a))
    }

    /// Column means (`1 x m`).
    pub fn mean_axis0(&mut self, a: TensorId) -> TensorId {
        let r = self.nodes[a.0].value.rows();
        let mut v = self.fill_col_sums(a);
        if r > 0 {
            let inv = 1.0 / r as f64;
            for x in v.as_mut_slice() {
                *x *= inv;
            }
        }
        self.unary(a, v, Op::MeanAxis0(a))
    }

    /// Row sums into a pooled `rows x 1` buffer (order matches
    /// [`Matrix::sum_axis1`]).
    fn fill_row_sums(&mut self, a: TensorId) -> Matrix {
        row_sums_of(&mut self.pool, &self.nodes[a.0].value)
    }

    /// Row sums (`n x 1`).
    pub fn sum_axis1(&mut self, a: TensorId) -> TensorId {
        let v = self.fill_row_sums(a);
        self.unary(a, v, Op::SumAxis1(a))
    }

    /// Row means (`n x 1`).
    pub fn mean_axis1(&mut self, a: TensorId) -> TensorId {
        let c = self.nodes[a.0].value.cols();
        let mut v = self.fill_row_sums(a);
        if c > 0 {
            let inv = 1.0 / c as f64;
            for x in v.as_mut_slice() {
                *x *= inv;
            }
        }
        self.unary(a, v, Op::MeanAxis1(a))
    }

    // ----- structural ops -------------------------------------------------------

    /// Gathers the listed rows (indices may repeat).
    #[track_caller]
    pub fn gather_rows(&mut self, a: TensorId, idx: &[usize]) -> TensorId {
        let (rows, cols) = self.nodes[a.0].value.shape();
        let mut v = self.pool.take(idx.len(), cols);
        let av = &self.nodes[a.0].value;
        for (k, &i) in idx.iter().enumerate() {
            assert!(i < rows, "gather_rows: index {i} out of bounds ({rows} rows)");
            v.row_mut(k).copy_from_slice(av.row(i));
        }
        let list = self.intern_indices(idx);
        self.unary(a, v, Op::GatherRows(a, list))
    }

    /// Gathers the listed columns (indices may repeat).
    #[track_caller]
    pub fn gather_cols(&mut self, a: TensorId, idx: &[usize]) -> TensorId {
        let (rows, cols) = self.nodes[a.0].value.shape();
        let mut v = self.pool.take(rows, idx.len());
        let av = &self.nodes[a.0].value;
        for (k, &j) in idx.iter().enumerate() {
            assert!(j < cols, "gather_cols: index {j} out of bounds ({cols} cols)");
            for i in 0..rows {
                v[(i, k)] = av[(i, j)];
            }
        }
        let list = self.intern_indices(idx);
        self.unary(a, v, Op::GatherCols(a, list))
    }

    /// Horizontal concatenation `[a | b]`.
    #[track_caller]
    pub fn concat_cols(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let (ar, ac) = self.nodes[a.0].value.shape();
        let (br, bc) = self.nodes[b.0].value.shape();
        assert_eq!(ar, br, "hstack: row counts differ");
        let mut v = self.pool.take(ar, ac + bc);
        let av = &self.nodes[a.0].value;
        let bv = &self.nodes[b.0].value;
        for i in 0..ar {
            let row = v.row_mut(i);
            row[..ac].copy_from_slice(av.row(i));
            row[ac..].copy_from_slice(bv.row(i));
        }
        self.binary(a, b, v, Op::ConcatCols(a, b))
    }

    /// Column slice `[start, end)`.
    #[track_caller]
    pub fn slice_cols(&mut self, a: TensorId, start: usize, end: usize) -> TensorId {
        let (rows, cols) = self.nodes[a.0].value.shape();
        assert!(start <= end && end <= cols, "slice_cols: bad range {start}..{end}");
        let mut v = self.pool.take(rows, end - start);
        let av = &self.nodes[a.0].value;
        for i in 0..rows {
            v.row_mut(i).copy_from_slice(&av.row(i)[start..end]);
        }
        self.unary(a, v, Op::SliceCols(a, start, end))
    }

    /// Multiplies every element of `a` by the value of the `1 x 1` node `s`.
    #[track_caller]
    pub fn mul_scalar_of(&mut self, a: TensorId, s: TensorId) -> TensorId {
        let sv = self.nodes[s.0].value.item();
        let mut v = self.take_like(a);
        v.fill_map(&self.nodes[a.0].value, |x| x * sv);
        self.binary(a, s, v, Op::MulScalarOf(a, s))
    }

    /// Divides every element of `a` by the value of the `1 x 1` node `s`.
    #[track_caller]
    pub fn div_scalar_of(&mut self, a: TensorId, s: TensorId) -> TensorId {
        let sv = self.nodes[s.0].value.item();
        let inv = 1.0 / sv;
        let mut v = self.take_like(a);
        v.fill_map(&self.nodes[a.0].value, |x| x * inv);
        self.binary(a, s, v, Op::DivScalarOf(a, s))
    }

    // ----- composite helpers ------------------------------------------------------

    /// `a - row` broadcast (composed from [`Graph::add_row`] and [`Graph::neg`]).
    pub fn sub_row(&mut self, a: TensorId, row: TensorId) -> TensorId {
        let n = self.neg(row);
        self.add_row(a, n)
    }

    /// `a / row` broadcast.
    pub fn div_row(&mut self, a: TensorId, row: TensorId) -> TensorId {
        let r = self.recip(row);
        self.mul_row(a, r)
    }

    /// `a / col` broadcast.
    pub fn div_col(&mut self, a: TensorId, col: TensorId) -> TensorId {
        let r = self.recip(col);
        self.mul_col(a, r)
    }

    /// Block-masked sum of squares (`1 x 1`): multiplies entry `(p, q)` of a
    /// square matrix by `1.0` when `p % d == q % d` equals `keep_diagonal`
    /// (`0.0` otherwise), squares, and folds in slice order. Arithmetic is
    /// identical to materialising the historical `{0,1}` mask matrix and
    /// running `mul` + `square` + `sum`, so values and gradients are
    /// bit-identical — the mask just never exists in memory.
    ///
    /// # Panics
    /// Panics if `d == 0`.
    #[track_caller]
    pub fn block_masked_sumsq(&mut self, a: TensorId, d: usize, keep_diagonal: bool) -> TensorId {
        assert!(d > 0, "block_masked_sumsq: block width must be positive");
        let mut acc = 0.0;
        {
            let av = &self.nodes[a.0].value;
            let rows = av.rows();
            // Residues tracked incrementally (no per-element division).
            let mut pm = 0;
            for p in 0..rows {
                let mut qm = 0;
                for &x in av.row(p) {
                    let m = if (pm == qm) == keep_diagonal { 1.0 } else { 0.0 };
                    let v = x * m;
                    acc += v * v;
                    qm += 1;
                    if qm == d {
                        qm = 0;
                    }
                }
                pm += 1;
                if pm == d {
                    pm = 0;
                }
            }
        }
        self.scalar_node(a, acc, Op::BlockMaskedSumSq(a, d, keep_diagonal))
    }

    /// Sum of squares of all elements (`1 x 1`) — a fused `square` + `sum`
    /// (each element is squared then folded in slice order, exactly like the
    /// historical two-op chain, without materialising the squared matrix).
    pub fn sumsq(&mut self, a: TensorId) -> TensorId {
        let mut acc = 0.0;
        for &x in self.nodes[a.0].value.as_slice() {
            acc += x * x;
        }
        self.scalar_node(a, acc, Op::SumSq(a))
    }

    /// Squared Euclidean norm of the difference of two same-shape tensors.
    pub fn sq_dist(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let d = self.sub(a, b);
        self.sumsq(d)
    }
}

/// Numerically stable logistic sigmoid.
pub fn stable_sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Numerically stable softplus `ln(1 + e^x)`.
pub fn stable_softplus(x: f64) -> f64 {
    if x > 30.0 {
        x
    } else if x < -30.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

impl Graph {
    /// Reverse-mode sweep seeding `d loss / d loss = 1`.
    ///
    /// # Panics
    /// Panics if `loss` is not a `1 x 1` node.
    #[track_caller]
    pub fn backward(&mut self, loss: TensorId) {
        assert_eq!(
            self.nodes[loss.0].value.shape(),
            (1, 1),
            "backward: loss must be a scalar (1x1) node"
        );
        for i in 0..self.nodes.len() {
            if let Some(gm) = self.nodes[i].grad.take() {
                self.pool.give(gm);
            }
        }
        let mut seed = self.pool.take(1, 1);
        seed.as_mut_slice()[0] = 1.0;
        self.nodes[loss.0].grad = Some(seed);

        for i in (0..self.nodes.len()).rev() {
            if !self.nodes[i].requires_grad {
                continue;
            }
            let Some(g) = self.nodes[i].grad.take() else { continue };
            let op = self.nodes[i].op;
            self.propagate(i, &g, op);
            self.nodes[i].grad = Some(g);
        }
    }

    /// Adds `delta` into the gradient slot of `target`, recycling `delta`'s
    /// buffer when it is not kept.
    fn accumulate(&mut self, target: TensorId, delta: Matrix) {
        if !self.nodes[target.0].requires_grad {
            self.pool.give(delta);
            return;
        }
        match &mut self.nodes[target.0].grad {
            Some(acc) => {
                acc.add_assign(&delta);
                self.pool.give(delta);
            }
            slot @ None => *slot = Some(delta),
        }
    }

    /// Pool buffer shaped like the upstream gradient.
    fn take_like_grad(&mut self, g: &Matrix) -> Matrix {
        self.pool.take(g.rows(), g.cols())
    }

    /// Applies the backward rule of `op` for node `i` with upstream gradient
    /// `g`. Deltas destined for nodes that do not require gradients are not
    /// even computed (the arithmetic for every reached node is unchanged, so
    /// results stay bit-identical).
    fn propagate(&mut self, i: usize, g: &Matrix, op: Op) {
        match op {
            Op::Leaf => {}
            Op::Add(a, b) => {
                if self.requires(a) {
                    let mut d = self.take_like_grad(g);
                    d.copy_from(g);
                    self.accumulate(a, d);
                }
                if self.requires(b) {
                    let mut d = self.take_like_grad(g);
                    d.copy_from(g);
                    self.accumulate(b, d);
                }
            }
            Op::Sub(a, b) => {
                if self.requires(a) {
                    let mut d = self.take_like_grad(g);
                    d.copy_from(g);
                    self.accumulate(a, d);
                }
                if self.requires(b) {
                    let mut d = self.take_like_grad(g);
                    d.fill_map(g, |x| -x);
                    self.accumulate(b, d);
                }
            }
            Op::Mul(a, b) => {
                if self.requires(a) {
                    let mut d = self.take_like_grad(g);
                    d.fill_zip(g, &self.nodes[b.0].value, |gv, bv| gv * bv);
                    self.accumulate(a, d);
                }
                if self.requires(b) {
                    let mut d = self.take_like_grad(g);
                    d.fill_zip(g, &self.nodes[a.0].value, |gv, av| gv * av);
                    self.accumulate(b, d);
                }
            }
            Op::Div(a, b) => {
                if self.requires(a) {
                    let mut d = self.take_like_grad(g);
                    d.fill_zip(g, &self.nodes[b.0].value, |gv, bv| gv / bv);
                    self.accumulate(a, d);
                }
                if self.requires(b) {
                    // Matches the historical `g * a / b / b * -1` chain.
                    let mut d = self.take_like_grad(g);
                    let av = self.nodes[a.0].value.as_slice();
                    let bv = self.nodes[b.0].value.as_slice();
                    for ((o, &gv), (&a_i, &b_i)) in
                        d.as_mut_slice().iter_mut().zip(g.as_slice()).zip(av.iter().zip(bv))
                    {
                        *o = -(gv * a_i / b_i / b_i);
                    }
                    self.accumulate(b, d);
                }
            }
            Op::MatMul(a, b) => {
                // Skip the (potentially large) delta products for constants.
                if self.requires(a) {
                    let (r, c) = self.nodes[a.0].value.shape();
                    let mut d = self.pool.take(r, c);
                    crate::kernels::gemm_nt_into(
                        g,
                        &self.nodes[b.0].value,
                        &mut d,
                        crate::kernels::Parallelism::global(),
                    );
                    self.accumulate(a, d);
                }
                if self.requires(b) {
                    let (r, c) = self.nodes[b.0].value.shape();
                    let mut d = self.pool.take(r, c);
                    crate::kernels::gemm_tn_into(
                        &self.nodes[a.0].value,
                        g,
                        &mut d,
                        crate::kernels::Parallelism::global(),
                    );
                    self.accumulate(b, d);
                }
            }
            Op::Transpose(a) => {
                if self.requires(a) {
                    let mut d = self.pool.take(g.cols(), g.rows());
                    d.transpose_from(g);
                    self.accumulate(a, d);
                }
            }
            Op::AddRow(a, row) => {
                if self.requires(a) {
                    let mut d = self.take_like_grad(g);
                    d.copy_from(g);
                    self.accumulate(a, d);
                }
                if self.requires(row) {
                    let d = col_sums_of(&mut self.pool, g);
                    self.accumulate(row, d);
                }
            }
            Op::AddCol(a, col) => {
                if self.requires(a) {
                    let mut d = self.take_like_grad(g);
                    d.copy_from(g);
                    self.accumulate(a, d);
                }
                if self.requires(col) {
                    let d = row_sums_of(&mut self.pool, g);
                    self.accumulate(col, d);
                }
            }
            Op::MulRow(a, row) => {
                if self.requires(a) {
                    let mut d = self.take_like_grad(g);
                    let rv = self.nodes[row.0].value.as_slice();
                    for r in 0..g.rows() {
                        for ((x, &gv), &s) in d.row_mut(r).iter_mut().zip(g.row(r)).zip(rv) {
                            *x = gv * s;
                        }
                    }
                    self.accumulate(a, d);
                }
                if self.requires(row) {
                    // g .* a, column-summed in row order (matches the
                    // historical `g.mul(a).sum_axis0()` exactly).
                    let mut d = self.pool.take_zeroed(1, g.cols());
                    let av = &self.nodes[a.0].value;
                    for r in 0..g.rows() {
                        for ((o, &gv), &avv) in
                            d.as_mut_slice().iter_mut().zip(g.row(r)).zip(av.row(r))
                        {
                            *o += gv * avv;
                        }
                    }
                    self.accumulate(row, d);
                }
            }
            Op::MulCol(a, col) => {
                if self.requires(a) {
                    let mut d = self.take_like_grad(g);
                    let cv = self.nodes[col.0].value.as_slice();
                    for (r, &s) in cv.iter().enumerate() {
                        for (x, &gv) in d.row_mut(r).iter_mut().zip(g.row(r)) {
                            *x = gv * s;
                        }
                    }
                    self.accumulate(a, d);
                }
                if self.requires(col) {
                    // g .* a, row-summed (matches `g.mul(a).sum_axis1()`).
                    let mut d = self.pool.take(g.rows(), 1);
                    let av = &self.nodes[a.0].value;
                    for (r, o) in d.as_mut_slice().iter_mut().enumerate() {
                        *o = g.row(r).iter().zip(av.row(r)).map(|(&gv, &avv)| gv * avv).sum();
                    }
                    self.accumulate(col, d);
                }
            }
            Op::ColPlusRow(col, row) => {
                if self.requires(col) {
                    let d = row_sums_of(&mut self.pool, g);
                    self.accumulate(col, d);
                }
                if self.requires(row) {
                    let d = col_sums_of(&mut self.pool, g);
                    self.accumulate(row, d);
                }
            }
            Op::Neg(a) => {
                if self.requires(a) {
                    let mut d = self.take_like_grad(g);
                    d.fill_map(g, |x| -x);
                    self.accumulate(a, d);
                }
            }
            Op::Exp(a) => {
                if self.requires(a) {
                    let mut d = self.take_like_grad(g);
                    d.fill_zip(g, &self.nodes[i].value, |gv, out| gv * out);
                    self.accumulate(a, d);
                }
            }
            Op::Ln(a) => {
                if self.requires(a) {
                    let mut d = self.take_like_grad(g);
                    d.fill_zip(g, &self.nodes[a.0].value, |gv, x| gv / x);
                    self.accumulate(a, d);
                }
            }
            Op::Sqrt(a) => {
                if self.requires(a) {
                    let mut d = self.take_like_grad(g);
                    d.fill_zip(g, &self.nodes[i].value, |gv, out| 0.5 * gv / out);
                    self.accumulate(a, d);
                }
            }
            Op::Cos(a) => {
                if self.requires(a) {
                    let mut d = self.take_like_grad(g);
                    d.fill_zip(g, &self.nodes[a.0].value, |gv, x| -gv * x.sin());
                    self.accumulate(a, d);
                }
            }
            Op::Sin(a) => {
                if self.requires(a) {
                    let mut d = self.take_like_grad(g);
                    d.fill_zip(g, &self.nodes[a.0].value, |gv, x| gv * x.cos());
                    self.accumulate(a, d);
                }
            }
            Op::Tanh(a) => {
                if self.requires(a) {
                    let mut d = self.take_like_grad(g);
                    d.fill_zip(g, &self.nodes[i].value, |gv, out| gv * (1.0 - out * out));
                    self.accumulate(a, d);
                }
            }
            Op::Sigmoid(a) => {
                if self.requires(a) {
                    let mut d = self.take_like_grad(g);
                    d.fill_zip(g, &self.nodes[i].value, |gv, out| gv * out * (1.0 - out));
                    self.accumulate(a, d);
                }
            }
            Op::Softplus(a) => {
                if self.requires(a) {
                    let mut d = self.take_like_grad(g);
                    d.fill_zip(g, &self.nodes[a.0].value, |gv, x| gv * stable_sigmoid(x));
                    self.accumulate(a, d);
                }
            }
            Op::Relu(a) => {
                if self.requires(a) {
                    let mut d = self.take_like_grad(g);
                    d.fill_zip(g, &self.nodes[a.0].value, |gv, x| if x > 0.0 { gv } else { 0.0 });
                    self.accumulate(a, d);
                }
            }
            Op::Elu(a, alpha) => {
                if self.requires(a) {
                    let mut d = self.take_like_grad(g);
                    d.fill_zip(g, &self.nodes[i].value, |gv, out| {
                        if out > 0.0 {
                            gv
                        } else {
                            gv * (out + alpha)
                        }
                    });
                    self.accumulate(a, d);
                }
            }
            Op::Square(a) => {
                if self.requires(a) {
                    let mut d = self.take_like_grad(g);
                    d.fill_zip(g, &self.nodes[a.0].value, |gv, x| 2.0 * gv * x);
                    self.accumulate(a, d);
                }
            }
            Op::Abs(a) => {
                if self.requires(a) {
                    let mut d = self.take_like_grad(g);
                    d.fill_zip(g, &self.nodes[a.0].value, |gv, x| gv * sign(x));
                    self.accumulate(a, d);
                }
            }
            Op::Powf(a, p) => {
                if self.requires(a) {
                    let mut d = self.take_like_grad(g);
                    d.fill_zip(g, &self.nodes[a.0].value, |gv, x| gv * p * x.powf(p - 1.0));
                    self.accumulate(a, d);
                }
            }
            Op::Recip(a) => {
                if self.requires(a) {
                    let mut d = self.take_like_grad(g);
                    d.fill_zip(g, &self.nodes[i].value, |gv, out| -gv * out * out);
                    self.accumulate(a, d);
                }
            }
            Op::Scale(a, s) => {
                if self.requires(a) {
                    let mut d = self.take_like_grad(g);
                    d.fill_map(g, |x| x * s);
                    self.accumulate(a, d);
                }
            }
            Op::AddScalar(a) => {
                if self.requires(a) {
                    let mut d = self.take_like_grad(g);
                    d.copy_from(g);
                    self.accumulate(a, d);
                }
            }
            Op::Clamp(a, lo, hi) => {
                if self.requires(a) {
                    let mut d = self.take_like_grad(g);
                    d.fill_zip(
                        g,
                        &self.nodes[a.0].value,
                        |gv, x| {
                            if x > lo && x < hi {
                                gv
                            } else {
                                0.0
                            }
                        },
                    );
                    self.accumulate(a, d);
                }
            }
            Op::Sum(a) => {
                if self.requires(a) {
                    let (r, c) = self.nodes[a.0].value.shape();
                    let mut d = self.pool.take(r, c);
                    d.fill_with(g.item());
                    self.accumulate(a, d);
                }
            }
            Op::Mean(a) => {
                if self.requires(a) {
                    let (r, c) = self.nodes[a.0].value.shape();
                    let n = (r * c) as f64;
                    let mut d = self.pool.take(r, c);
                    d.fill_with(g.item() / n);
                    self.accumulate(a, d);
                }
            }
            Op::SumAxis0(a) => {
                if self.requires(a) {
                    let (r, c) = self.nodes[a.0].value.shape();
                    let mut d = self.pool.take(r, c);
                    let gv = g.as_slice();
                    for row in 0..r {
                        d.row_mut(row).copy_from_slice(gv);
                    }
                    self.accumulate(a, d);
                }
            }
            Op::MeanAxis0(a) => {
                if self.requires(a) {
                    let (r, c) = self.nodes[a.0].value.shape();
                    let mut d = self.pool.take(r, c);
                    let gv = g.as_slice();
                    let inv = 1.0 / r as f64;
                    for row in 0..r {
                        for (o, &x) in d.row_mut(row).iter_mut().zip(gv) {
                            *o = x * inv;
                        }
                    }
                    self.accumulate(a, d);
                }
            }
            Op::SumAxis1(a) => {
                if self.requires(a) {
                    let (r, c) = self.nodes[a.0].value.shape();
                    let mut d = self.pool.take(r, c);
                    let gv = g.as_slice();
                    for (row, &x) in gv.iter().enumerate().take(r) {
                        d.row_mut(row).fill(x);
                    }
                    self.accumulate(a, d);
                }
            }
            Op::MeanAxis1(a) => {
                if self.requires(a) {
                    let (r, c) = self.nodes[a.0].value.shape();
                    let mut d = self.pool.take(r, c);
                    let gv = g.as_slice();
                    let inv = 1.0 / c as f64;
                    for (row, &x) in gv.iter().enumerate().take(r) {
                        d.row_mut(row).fill(x * inv);
                    }
                    self.accumulate(a, d);
                }
            }
            Op::GatherRows(a, list) => {
                if self.requires(a) {
                    let (r, c) = self.nodes[a.0].value.shape();
                    let mut d = self.pool.take_zeroed(r, c);
                    for (k, &src) in self.idx_lists[list].iter().enumerate() {
                        for (x, &gvv) in d.row_mut(src).iter_mut().zip(g.row(k)) {
                            *x += gvv;
                        }
                    }
                    self.accumulate(a, d);
                }
            }
            Op::GatherCols(a, list) => {
                if self.requires(a) {
                    let (r, c) = self.nodes[a.0].value.shape();
                    let mut d = self.pool.take_zeroed(r, c);
                    for (k, &src) in self.idx_lists[list].iter().enumerate() {
                        for row in 0..r {
                            d[(row, src)] += g[(row, k)];
                        }
                    }
                    self.accumulate(a, d);
                }
            }
            Op::ConcatCols(a, b) => {
                let ac = self.nodes[a.0].value.cols();
                let total = g.cols();
                if self.requires(a) {
                    let d = slice_cols_of(&mut self.pool, g, 0, ac);
                    self.accumulate(a, d);
                }
                if self.requires(b) {
                    let d = slice_cols_of(&mut self.pool, g, ac, total);
                    self.accumulate(b, d);
                }
            }
            Op::SliceCols(a, start, end) => {
                if self.requires(a) {
                    let (r, c) = self.nodes[a.0].value.shape();
                    let mut d = self.pool.take_zeroed(r, c);
                    for row in 0..r {
                        d.row_mut(row)[start..end].copy_from_slice(g.row(row));
                    }
                    self.accumulate(a, d);
                }
            }
            Op::CosAffine(a, omega, phi, post_scale) => {
                if self.requires(a) {
                    // Matches the historical scale/add_scalar/cos/scale
                    // backward chain term for term.
                    let mut d = self.take_like_grad(g);
                    d.fill_zip(g, &self.nodes[a.0].value, |gv, x| {
                        let t = gv * post_scale;
                        (-t * (x * omega + phi).sin()) * omega
                    });
                    self.accumulate(a, d);
                }
            }
            Op::RffFeatures(a, list, post_scale) => {
                if self.requires(a) {
                    // The historical chain accumulated one delta per block
                    // into the input's gradient in descending block order
                    // (reverse tape order). When the gradient slot is still
                    // empty that chain is `t_{k-1} + t_{k-2} + ...` and can
                    // be folded in one pass; when another consumer already
                    // stored a gradient, the chain's per-block add_assigns
                    // must be replayed verbatim to keep the association —
                    // and therefore the bits — identical.
                    let (n, d) = self.nodes[a.0].value.shape();
                    if self.nodes[a.0].grad.is_none() {
                        let mut delta = self.pool.take(n, d);
                        {
                            let av = &self.nodes[a.0].value;
                            let coefs = &self.coef_lists[list];
                            for r in 0..n {
                                let src = av.row(r);
                                let grow = g.row(r);
                                let drow = delta.row_mut(r);
                                for (c, (o, &x)) in drow.iter_mut().zip(src).enumerate() {
                                    let mut acc = 0.0;
                                    for (i, &(omega, phi)) in coefs.iter().enumerate().rev() {
                                        let gv = grow[i * d + c];
                                        let t = gv * post_scale;
                                        let term = (-t * (x * omega + phi).sin()) * omega;
                                        if i + 1 == coefs.len() {
                                            acc = term;
                                        } else {
                                            acc += term;
                                        }
                                    }
                                    *o = acc;
                                }
                            }
                        }
                        self.accumulate(a, delta);
                    } else {
                        let k = self.coef_lists[list].len();
                        for i in (0..k).rev() {
                            let (omega, phi) = self.coef_lists[list][i];
                            let mut delta = self.pool.take(n, d);
                            {
                                let av = &self.nodes[a.0].value;
                                for r in 0..n {
                                    let src = av.row(r);
                                    let grow = &g.row(r)[i * d..(i + 1) * d];
                                    for ((o, &x), &gv) in
                                        delta.row_mut(r).iter_mut().zip(src).zip(grow)
                                    {
                                        let t = gv * post_scale;
                                        *o = (-t * (x * omega + phi).sin()) * omega;
                                    }
                                }
                            }
                            self.accumulate(a, delta);
                        }
                    }
                }
            }
            Op::SumSq(a) => {
                if self.requires(a) {
                    // `sum` backward broadcasts g, `square` backward applies
                    // `2 g x` — fused into one pass with the same arithmetic.
                    let gv = g.item();
                    let mut d = self.take_like(a);
                    d.fill_map(&self.nodes[a.0].value, |x| 2.0 * gv * x);
                    self.accumulate(a, d);
                }
            }
            Op::BlockMaskedSumSq(a, d_width, keep_diagonal) => {
                if self.requires(a) {
                    // Chain equivalent: `sum` broadcast, `square` backward
                    // `2 g v`, then `mul` backward re-applies the mask.
                    let gv = g.item();
                    let rows = self.nodes[a.0].value.rows();
                    let mut d = self.take_like(a);
                    {
                        let av = &self.nodes[a.0].value;
                        let mut pm = 0;
                        for p in 0..rows {
                            let mut qm = 0;
                            for (o, &x) in d.row_mut(p).iter_mut().zip(av.row(p)) {
                                let m = if (pm == qm) == keep_diagonal { 1.0 } else { 0.0 };
                                *o = (2.0 * gv * (x * m)) * m;
                                qm += 1;
                                if qm == d_width {
                                    qm = 0;
                                }
                            }
                            pm += 1;
                            if pm == d_width {
                                pm = 0;
                            }
                        }
                    }
                    self.accumulate(a, d);
                }
            }
            Op::MatMulTn(a, b) => {
                if self.requires(a) {
                    // Historical chain: d_ft = g * b^T, then the transpose
                    // node flips it back; fused here as (g * b^T)^T.
                    let (r, c) = self.nodes[a.0].value.shape();
                    let mut tmp = self.pool.take(c, r);
                    crate::kernels::gemm_nt_into(
                        g,
                        &self.nodes[b.0].value,
                        &mut tmp,
                        crate::kernels::Parallelism::global(),
                    );
                    let mut d = self.pool.take(r, c);
                    d.transpose_from(&tmp);
                    self.pool.give(tmp);
                    self.accumulate(a, d);
                }
                if self.requires(b) {
                    // d_b = a * g; `gemm` over `a` accumulates and skips
                    // exact zeros exactly like `gemm_tn` over `a^T` did.
                    let (r, c) = self.nodes[b.0].value.shape();
                    let mut d = self.pool.take(r, c);
                    crate::kernels::gemm_into(
                        &self.nodes[a.0].value,
                        g,
                        &mut d,
                        crate::kernels::Parallelism::global(),
                    );
                    self.accumulate(b, d);
                }
            }
            Op::MulScalarOf(a, s) => {
                let sv = self.nodes[s.0].value.item();
                if self.requires(a) {
                    let mut d = self.take_like_grad(g);
                    d.fill_map(g, |x| x * sv);
                    self.accumulate(a, d);
                }
                if self.requires(s) {
                    let ds = g.dot(&self.nodes[a.0].value);
                    let mut d = self.pool.take(1, 1);
                    d.as_mut_slice()[0] = ds;
                    self.accumulate(s, d);
                }
            }
            Op::DivScalarOf(a, s) => {
                let sv = self.nodes[s.0].value.item();
                if self.requires(a) {
                    let inv = 1.0 / sv;
                    let mut d = self.take_like_grad(g);
                    d.fill_map(g, |x| x * inv);
                    self.accumulate(a, d);
                }
                if self.requires(s) {
                    let ds = -g.dot(&self.nodes[a.0].value) / (sv * sv);
                    let mut d = self.pool.take(1, 1);
                    d.as_mut_slice()[0] = ds;
                    self.accumulate(s, d);
                }
            }
        }
    }
}

/// Column sums of `g` into a pooled `1 x cols` buffer (order matches
/// [`Matrix::sum_axis0`]).
fn col_sums_of(pool: &mut BufferPool, g: &Matrix) -> Matrix {
    let mut d = pool.take_zeroed(1, g.cols());
    for r in 0..g.rows() {
        for (o, &x) in d.as_mut_slice().iter_mut().zip(g.row(r)) {
            *o += x;
        }
    }
    d
}

/// Row sums of `g` into a pooled `rows x 1` buffer (order matches
/// [`Matrix::sum_axis1`]).
fn row_sums_of(pool: &mut BufferPool, g: &Matrix) -> Matrix {
    let mut d = pool.take(g.rows(), 1);
    for (r, o) in d.as_mut_slice().iter_mut().enumerate() {
        *o = g.row(r).iter().sum();
    }
    d
}

/// Column slice `[start, end)` of `g` into a pooled buffer.
fn slice_cols_of(pool: &mut BufferPool, g: &Matrix, start: usize, end: usize) -> Matrix {
    let mut d = pool.take(g.rows(), end - start);
    for row in 0..g.rows() {
        d.row_mut(row).copy_from_slice(&g.row(row)[start..end]);
    }
    d
}

fn sign(x: f64) -> f64 {
    if x > 0.0 {
        1.0
    } else if x < 0.0 {
        -1.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_values_are_eager() {
        let mut g = Graph::new();
        let a = g.constant(Matrix::from_vec(1, 2, vec![3.0, 4.0]));
        let b = g.constant(Matrix::from_vec(1, 2, vec![1.0, 2.0]));
        let s = g.add(a, b);
        assert_eq!(g.value(s).as_slice(), &[4.0, 6.0]);
        let p = g.mul(a, b);
        assert_eq!(g.value(p).as_slice(), &[3.0, 8.0]);
    }

    #[test]
    fn backward_through_linear_chain() {
        // loss = mean((x*w)^2), x = [[1,2],[3,4]], w = [[1],[1]]
        let mut g = Graph::new();
        let x = g.constant(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let w = g.param(Matrix::ones(2, 1));
        let y = g.matmul(x, w); // [3, 7]
        let sq = g.square(y);
        let loss = g.mean(sq); // (9 + 49)/2 = 29
        assert_eq!(g.scalar(loss), 29.0);
        g.backward(loss);
        // dloss/dy = y, so grad_w = x^T y = [1*3+3*7, 2*3+4*7] = [24, 34]
        let gw = g.grad(w).unwrap();
        assert!(gw.approx_eq(&Matrix::from_vec(2, 1, vec![24.0, 34.0]), 1e-12));
    }

    #[test]
    fn constants_get_no_gradient() {
        let mut g = Graph::new();
        let c = g.constant(Matrix::ones(2, 2));
        let w = g.param(Matrix::ones(2, 2));
        let m = g.mul(c, w);
        let loss = g.sum(m);
        g.backward(loss);
        assert!(g.grad(c).is_none());
        assert!(g.grad(w).is_some());
    }

    #[test]
    fn gradient_accumulates_over_reused_nodes() {
        // loss = sum(w) + sum(w) -> grad = 2 * ones
        let mut g = Graph::new();
        let w = g.param(Matrix::ones(2, 2));
        let s1 = g.sum(w);
        let s2 = g.sum(w);
        let loss = g.add(s1, s2);
        g.backward(loss);
        assert!(g.grad(w).unwrap().approx_eq(&Matrix::full(2, 2, 2.0), 1e-12));
    }

    #[test]
    #[should_panic(expected = "backward: loss must be a scalar")]
    fn backward_rejects_non_scalar_loss() {
        let mut g = Graph::new();
        let w = g.param(Matrix::ones(2, 2));
        g.backward(w);
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert!((stable_sigmoid(1000.0) - 1.0).abs() < 1e-12);
        assert!(stable_sigmoid(-1000.0).abs() < 1e-12);
        assert!((stable_sigmoid(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn softplus_is_stable_at_extremes() {
        assert!((stable_softplus(1000.0) - 1000.0).abs() < 1e-9);
        assert!(stable_softplus(-1000.0) >= 0.0);
        assert!((stable_softplus(0.0) - 2.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn gather_rows_backward_scatter_adds() {
        let mut g = Graph::new();
        let w = g.param(Matrix::from_vec(3, 1, vec![1.0, 2.0, 3.0]));
        let gathered = g.gather_rows(w, &[0, 0, 2]);
        let loss = g.sum(gathered);
        g.backward(loss);
        // row 0 used twice, row 1 never, row 2 once
        assert!(g.grad(w).unwrap().approx_eq(&Matrix::from_vec(3, 1, vec![2.0, 0.0, 1.0]), 1e-12));
    }

    #[test]
    fn concat_and_slice_roundtrip_gradients() {
        let mut g = Graph::new();
        let a = g.param(Matrix::ones(2, 2));
        let b = g.param(Matrix::ones(2, 3));
        let cat = g.concat_cols(a, b);
        let sl = g.slice_cols(cat, 1, 4); // one col of a, two cols of b
        let loss = g.sum(sl);
        g.backward(loss);
        assert!(g
            .grad(a)
            .unwrap()
            .approx_eq(&Matrix::from_vec(2, 2, vec![0.0, 1.0, 0.0, 1.0]), 1e-12));
        assert!(g
            .grad(b)
            .unwrap()
            .approx_eq(&Matrix::from_vec(2, 3, vec![1.0, 1.0, 0.0, 1.0, 1.0, 0.0]), 1e-12));
    }

    #[test]
    fn scalar_broadcast_ops() {
        let mut g = Graph::new();
        let a = g.param(Matrix::from_vec(1, 2, vec![2.0, 4.0]));
        let s = g.param(Matrix::scalar(2.0));
        let m = g.mul_scalar_of(a, s);
        assert_eq!(g.value(m).as_slice(), &[4.0, 8.0]);
        let d = g.div_scalar_of(a, s);
        assert_eq!(g.value(d).as_slice(), &[1.0, 2.0]);
        let both = g.add(m, d);
        let loss = g.sum(both);
        g.backward(loss);
        // d(sum(2a + a/2))/da = 2.5 per element
        assert!(g.grad(a).unwrap().approx_eq(&Matrix::full(1, 2, 2.5), 1e-12));
        // d/ds (s*(2+4) + (2+4)/s) at s=2 => 6 - 6/4 = 4.5
        assert!((g.grad(s).unwrap().item() - 4.5).abs() < 1e-12);
    }

    /// Runs one representative mixed-op step on `g` and returns the loss and
    /// the gradient bits of the parameter.
    fn step_bits(g: &mut Graph) -> (u64, Vec<u64>) {
        let x = g.constant(Matrix::from_fn(4, 3, |i, j| (i * 3 + j) as f64 * 0.25 - 1.0));
        let w = g.param(Matrix::from_fn(3, 2, |i, j| ((i + 2 * j) as f64).sin()));
        let y = g.matmul(x, w);
        let t = g.tanh(y);
        let gathered = g.gather_rows(t, &[0, 2, 2, 3]);
        let cat = g.concat_cols(t, y);
        let sl = g.slice_cols(cat, 1, 3);
        let s1 = g.sumsq(gathered);
        let s2 = g.sumsq(sl);
        let loss = g.add(s1, s2);
        g.backward(loss);
        let bits = g.grad(w).unwrap().as_slice().iter().map(|v| v.to_bits()).collect();
        (g.scalar(loss).to_bits(), bits)
    }

    #[test]
    fn reset_reuses_buffers_and_stays_bit_identical() {
        let mut fresh = Graph::new();
        let (loss_bits, grad_bits) = step_bits(&mut fresh);

        let mut pooled = Graph::new();
        for step in 0..5 {
            pooled.reset();
            let (lb, gb) = step_bits(&mut pooled);
            assert_eq!(lb, loss_bits, "loss drifted on pooled step {step}");
            assert_eq!(gb, grad_bits, "gradient drifted on pooled step {step}");
        }
        assert!(pooled.pooled_buffers() > 0, "reset should park buffers");
    }

    /// Like [`step_bits`] but with pooled leaf constructors — the balanced
    /// take/give pattern the trainer uses.
    fn pooled_step(g: &mut Graph) {
        let xv = Matrix::from_fn(4, 3, |i, j| (i * 3 + j) as f64 * 0.25 - 1.0);
        let wv = Matrix::from_fn(3, 2, |i, j| ((i + 2 * j) as f64).sin());
        let x = g.constant_copied(&xv);
        let w = g.param_copied(&wv);
        let y = g.matmul(x, w);
        let t = g.tanh(y);
        let gathered = g.gather_rows(t, &[0, 2, 2, 3]);
        let s = g.sumsq(gathered);
        let loss = g.mean(s);
        g.backward(loss);
    }

    #[test]
    fn steady_state_reset_steps_do_not_grow_the_pool() {
        let mut g = Graph::new();
        for _ in 0..3 {
            g.reset();
            pooled_step(&mut g);
        }
        g.reset();
        let parked = g.pooled_buffers();
        for _ in 0..4 {
            g.reset();
            pooled_step(&mut g);
        }
        g.reset();
        assert_eq!(g.pooled_buffers(), parked, "pool should reach a fixed point");
    }

    #[test]
    fn id_buf_round_trip() {
        let mut g = Graph::new();
        let mut buf = g.take_id_buf();
        buf.push(TensorId(7));
        g.give_id_buf(buf);
        let again = g.take_id_buf();
        assert!(again.is_empty(), "recycled id buffers are cleared");
        assert!(again.capacity() >= 1);
    }

    #[test]
    fn pooled_leaf_constructors_match_plain_ones() {
        let src = Matrix::from_fn(3, 4, |i, j| (i * 4 + j) as f64);
        let mut g = Graph::new();
        let a = g.constant_copied(&src);
        assert_eq!(g.value(a).as_slice(), src.as_slice());
        let b = g.constant_col(&[1.0, 2.0, 3.0]);
        assert_eq!(g.value(b).shape(), (3, 1));
        let c = g.constant_full(2, 2, 0.5);
        assert_eq!(g.value(c).as_slice(), &[0.5; 4]);
        let d = g.constant_selected_rows(&src, &[2, 0, 2]);
        assert_eq!(g.value(d).as_slice(), src.select_rows(&[2, 0, 2]).as_slice());
        let p = g.param_copied(&src);
        let loss = g.sumsq(p);
        g.backward(loss);
        assert!(g.grad(p).is_some());
    }
}
