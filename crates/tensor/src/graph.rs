//! Define-by-run reverse-mode automatic differentiation over [`Matrix`]
//! values.
//!
//! A [`Graph`] is a tape of nodes; every builder method evaluates its result
//! eagerly and records the operation so that [`Graph::backward`] can sweep the
//! tape in reverse and accumulate gradients. The op set is intentionally the
//! minimal closure needed to express the SBRL-HAP losses: dense layers,
//! activations, weighted integral probability metrics (including a
//! differentiable Sinkhorn loop) and the weighted HSIC-RFF decorrelation
//! penalty.
//!
//! Typical use (one optimisation step = one graph):
//!
//! ```
//! use sbrl_tensor::{Graph, Matrix};
//!
//! let mut g = Graph::new();
//! let x = g.constant(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
//! let w = g.param(Matrix::ones(2, 1));
//! let y = g.matmul(x, w);
//! let sq = g.square(y);
//! let loss = g.mean(sq);
//! g.backward(loss);
//! let grad_w = g.grad(w).expect("param gradient");
//! assert_eq!(grad_w.shape(), (2, 1));
//! ```

use std::rc::Rc;

use crate::matrix::Matrix;

/// Handle to a node in a [`Graph`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct TensorId(pub(crate) usize);

/// The primitive operations the tape understands.
#[derive(Clone, Debug)]
pub(crate) enum Op {
    /// Input node (parameter or constant).
    Leaf,
    Add(TensorId, TensorId),
    Sub(TensorId, TensorId),
    Mul(TensorId, TensorId),
    Div(TensorId, TensorId),
    MatMul(TensorId, TensorId),
    Transpose(TensorId),
    /// `(n x m) + (1 x m)` row broadcast.
    AddRow(TensorId, TensorId),
    /// `(n x m) + (n x 1)` column broadcast.
    AddCol(TensorId, TensorId),
    /// `(n x m) * (1 x m)` row broadcast.
    MulRow(TensorId, TensorId),
    /// `(n x m) * (n x 1)` column broadcast.
    MulCol(TensorId, TensorId),
    /// `(n x 1) + (1 x m) -> n x m` outer sum (pairwise-distance helper).
    ColPlusRow(TensorId, TensorId),
    Neg(TensorId),
    Exp(TensorId),
    Ln(TensorId),
    Sqrt(TensorId),
    Cos(TensorId),
    Sin(TensorId),
    Tanh(TensorId),
    Sigmoid(TensorId),
    Softplus(TensorId),
    Relu(TensorId),
    Elu(TensorId, f64),
    Square(TensorId),
    Abs(TensorId),
    Powf(TensorId, f64),
    Recip(TensorId),
    Scale(TensorId, f64),
    AddScalar(TensorId),
    Clamp(TensorId, f64, f64),
    /// Sum of all elements -> `1 x 1`.
    Sum(TensorId),
    /// Mean of all elements -> `1 x 1`.
    Mean(TensorId),
    /// Column sums -> `1 x m`.
    SumAxis0(TensorId),
    /// Column means -> `1 x m`.
    MeanAxis0(TensorId),
    /// Row sums -> `n x 1`.
    SumAxis1(TensorId),
    /// Row means -> `n x 1`.
    MeanAxis1(TensorId),
    /// Row gather (indices may repeat); backward scatter-adds.
    GatherRows(TensorId, Rc<[usize]>),
    /// Column gather (indices may repeat); backward scatter-adds.
    GatherCols(TensorId, Rc<[usize]>),
    ConcatCols(TensorId, TensorId),
    SliceCols(TensorId, usize, usize),
    /// Multiply every element by the single value of a `1 x 1` node.
    MulScalarOf(TensorId, TensorId),
    /// Divide every element by the single value of a `1 x 1` node.
    DivScalarOf(TensorId, TensorId),
}

pub(crate) struct Node {
    pub(crate) value: Matrix,
    pub(crate) grad: Option<Matrix>,
    pub(crate) op: Op,
    pub(crate) requires_grad: bool,
}

/// A reverse-mode autodiff tape.
#[derive(Default)]
pub struct Graph {
    pub(crate) nodes: Vec<Node>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self { nodes: Vec::with_capacity(256) }
    }

    /// Number of nodes recorded so far.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn push(&mut self, value: Matrix, op: Op, requires_grad: bool) -> TensorId {
        self.nodes.push(Node { value, grad: None, op, requires_grad });
        TensorId(self.nodes.len() - 1)
    }

    /// Inserts a constant leaf (no gradient is accumulated into it).
    pub fn constant(&mut self, value: Matrix) -> TensorId {
        self.push(value, Op::Leaf, false)
    }

    /// Inserts a trainable leaf; its gradient is available after
    /// [`Graph::backward`].
    pub fn param(&mut self, value: Matrix) -> TensorId {
        self.push(value, Op::Leaf, true)
    }

    /// Inserts a `1 x 1` constant.
    pub fn scalar_const(&mut self, v: f64) -> TensorId {
        self.constant(Matrix::scalar(v))
    }

    /// Value of a node.
    pub fn value(&self, id: TensorId) -> &Matrix {
        &self.nodes[id.0].value
    }

    /// The single value of a `1 x 1` node.
    #[track_caller]
    pub fn scalar(&self, id: TensorId) -> f64 {
        self.nodes[id.0].value.item()
    }

    /// Gradient of a node, if it was reached by the last backward sweep.
    pub fn grad(&self, id: TensorId) -> Option<&Matrix> {
        self.nodes[id.0].grad.as_ref()
    }

    #[inline]
    fn requires(&self, id: TensorId) -> bool {
        self.nodes[id.0].requires_grad
    }

    fn unary(&mut self, a: TensorId, value: Matrix, op: Op) -> TensorId {
        let rg = self.requires(a);
        self.push(value, op, rg)
    }

    fn binary(&mut self, a: TensorId, b: TensorId, value: Matrix, op: Op) -> TensorId {
        let rg = self.requires(a) || self.requires(b);
        self.push(value, op, rg)
    }

    // ----- elementwise binary ops -------------------------------------------------

    /// Elementwise `a + b` (same shapes).
    #[track_caller]
    pub fn add(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let v = self.value(a).add(self.value(b));
        self.binary(a, b, v, Op::Add(a, b))
    }

    /// Elementwise `a - b` (same shapes).
    #[track_caller]
    pub fn sub(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let v = self.value(a).sub(self.value(b));
        self.binary(a, b, v, Op::Sub(a, b))
    }

    /// Elementwise `a * b` (same shapes).
    #[track_caller]
    pub fn mul(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let v = self.value(a).mul(self.value(b));
        self.binary(a, b, v, Op::Mul(a, b))
    }

    /// Elementwise `a / b` (same shapes).
    #[track_caller]
    pub fn div(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let v = self.value(a).div(self.value(b));
        self.binary(a, b, v, Op::Div(a, b))
    }

    // ----- linear algebra ---------------------------------------------------------

    /// Matrix product `a * b`.
    #[track_caller]
    pub fn matmul(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let v = self.value(a).matmul(self.value(b));
        self.binary(a, b, v, Op::MatMul(a, b))
    }

    /// Transpose.
    pub fn transpose(&mut self, a: TensorId) -> TensorId {
        let v = self.value(a).transpose();
        self.unary(a, v, Op::Transpose(a))
    }

    // ----- broadcasts -------------------------------------------------------------

    /// Adds a `1 x m` row vector to every row of an `n x m` matrix.
    #[track_caller]
    pub fn add_row(&mut self, a: TensorId, row: TensorId) -> TensorId {
        let (ar, ac) = self.value(a).shape();
        let (rr, rc) = self.value(row).shape();
        assert!(rr == 1 && rc == ac, "add_row: {ar}x{ac} + {rr}x{rc}");
        let rv = self.value(row).as_slice().to_vec();
        let mut v = self.value(a).clone();
        for i in 0..ar {
            for (x, &r) in v.row_mut(i).iter_mut().zip(&rv) {
                *x += r;
            }
        }
        self.binary(a, row, v, Op::AddRow(a, row))
    }

    /// Adds an `n x 1` column vector to every column of an `n x m` matrix.
    #[track_caller]
    pub fn add_col(&mut self, a: TensorId, col: TensorId) -> TensorId {
        let (ar, ac) = self.value(a).shape();
        let (cr, cc) = self.value(col).shape();
        assert!(cc == 1 && cr == ar, "add_col: {ar}x{ac} + {cr}x{cc}");
        let cv = self.value(col).as_slice().to_vec();
        let mut v = self.value(a).clone();
        for (i, &c) in cv.iter().enumerate() {
            for x in v.row_mut(i) {
                *x += c;
            }
        }
        self.binary(a, col, v, Op::AddCol(a, col))
    }

    /// Multiplies every row of an `n x m` matrix by a `1 x m` row vector.
    #[track_caller]
    pub fn mul_row(&mut self, a: TensorId, row: TensorId) -> TensorId {
        let (ar, ac) = self.value(a).shape();
        let (rr, rc) = self.value(row).shape();
        assert!(rr == 1 && rc == ac, "mul_row: {ar}x{ac} * {rr}x{rc}");
        let rv = self.value(row).as_slice().to_vec();
        let mut v = self.value(a).clone();
        for i in 0..ar {
            for (x, &r) in v.row_mut(i).iter_mut().zip(&rv) {
                *x *= r;
            }
        }
        self.binary(a, row, v, Op::MulRow(a, row))
    }

    /// Multiplies every column of an `n x m` matrix by an `n x 1` column
    /// vector (row-wise scaling, e.g. by sample weights).
    #[track_caller]
    pub fn mul_col(&mut self, a: TensorId, col: TensorId) -> TensorId {
        let (ar, ac) = self.value(a).shape();
        let (cr, cc) = self.value(col).shape();
        assert!(cc == 1 && cr == ar, "mul_col: {ar}x{ac} * {cr}x{cc}");
        let cv = self.value(col).as_slice().to_vec();
        let mut v = self.value(a).clone();
        for (i, &c) in cv.iter().enumerate() {
            for x in v.row_mut(i) {
                *x *= c;
            }
        }
        self.binary(a, col, v, Op::MulCol(a, col))
    }

    /// Outer sum of an `n x 1` column and a `1 x m` row -> `n x m`.
    #[track_caller]
    pub fn col_plus_row(&mut self, col: TensorId, row: TensorId) -> TensorId {
        let (cr, cc) = self.value(col).shape();
        let (rr, rc) = self.value(row).shape();
        assert!(cc == 1 && rr == 1, "col_plus_row: {cr}x{cc} (+) {rr}x{rc}");
        let cv = self.value(col).as_slice().to_vec();
        let rv = self.value(row).as_slice().to_vec();
        let v = Matrix::from_fn(cr, rc, |i, j| cv[i] + rv[j]);
        self.binary(col, row, v, Op::ColPlusRow(col, row))
    }

    // ----- elementwise unary ops --------------------------------------------------

    /// Elementwise negation.
    pub fn neg(&mut self, a: TensorId) -> TensorId {
        let v = self.value(a).map(|x| -x);
        self.unary(a, v, Op::Neg(a))
    }

    /// Elementwise `exp`.
    pub fn exp(&mut self, a: TensorId) -> TensorId {
        let v = self.value(a).map(f64::exp);
        self.unary(a, v, Op::Exp(a))
    }

    /// Elementwise natural logarithm.
    pub fn ln(&mut self, a: TensorId) -> TensorId {
        let v = self.value(a).map(f64::ln);
        self.unary(a, v, Op::Ln(a))
    }

    /// Elementwise square root.
    pub fn sqrt(&mut self, a: TensorId) -> TensorId {
        let v = self.value(a).map(f64::sqrt);
        self.unary(a, v, Op::Sqrt(a))
    }

    /// Elementwise cosine.
    pub fn cos(&mut self, a: TensorId) -> TensorId {
        let v = self.value(a).map(f64::cos);
        self.unary(a, v, Op::Cos(a))
    }

    /// Elementwise sine.
    pub fn sin(&mut self, a: TensorId) -> TensorId {
        let v = self.value(a).map(f64::sin);
        self.unary(a, v, Op::Sin(a))
    }

    /// Elementwise hyperbolic tangent.
    pub fn tanh(&mut self, a: TensorId) -> TensorId {
        let v = self.value(a).map(f64::tanh);
        self.unary(a, v, Op::Tanh(a))
    }

    /// Elementwise logistic sigmoid (numerically stable).
    pub fn sigmoid(&mut self, a: TensorId) -> TensorId {
        let v = self.value(a).map(stable_sigmoid);
        self.unary(a, v, Op::Sigmoid(a))
    }

    /// Elementwise softplus `ln(1 + e^x)` (numerically stable).
    pub fn softplus(&mut self, a: TensorId) -> TensorId {
        let v = self.value(a).map(stable_softplus);
        self.unary(a, v, Op::Softplus(a))
    }

    /// Elementwise rectified linear unit.
    pub fn relu(&mut self, a: TensorId) -> TensorId {
        let v = self.value(a).map(|x| x.max(0.0));
        self.unary(a, v, Op::Relu(a))
    }

    /// Elementwise exponential linear unit with slope `alpha`.
    pub fn elu(&mut self, a: TensorId, alpha: f64) -> TensorId {
        let v = self.value(a).map(|x| if x > 0.0 { x } else { alpha * (x.exp() - 1.0) });
        self.unary(a, v, Op::Elu(a, alpha))
    }

    /// Elementwise square.
    pub fn square(&mut self, a: TensorId) -> TensorId {
        let v = self.value(a).map(|x| x * x);
        self.unary(a, v, Op::Square(a))
    }

    /// Elementwise absolute value.
    pub fn abs(&mut self, a: TensorId) -> TensorId {
        let v = self.value(a).map(f64::abs);
        self.unary(a, v, Op::Abs(a))
    }

    /// Elementwise power with a constant exponent.
    pub fn powf(&mut self, a: TensorId, p: f64) -> TensorId {
        let v = self.value(a).map(|x| x.powf(p));
        self.unary(a, v, Op::Powf(a, p))
    }

    /// Elementwise reciprocal.
    pub fn recip(&mut self, a: TensorId) -> TensorId {
        let v = self.value(a).map(f64::recip);
        self.unary(a, v, Op::Recip(a))
    }

    /// Multiplies every element by the constant `s`.
    pub fn scale(&mut self, a: TensorId, s: f64) -> TensorId {
        let v = self.value(a).scale(s);
        self.unary(a, v, Op::Scale(a, s))
    }

    /// Adds the constant `s` to every element.
    pub fn add_scalar(&mut self, a: TensorId, s: f64) -> TensorId {
        let v = self.value(a).add_scalar(s);
        self.unary(a, v, Op::AddScalar(a))
    }

    /// Clamps every element into `[lo, hi]`; gradient is zero outside.
    pub fn clamp(&mut self, a: TensorId, lo: f64, hi: f64) -> TensorId {
        let v = self.value(a).clamp(lo, hi);
        self.unary(a, v, Op::Clamp(a, lo, hi))
    }

    // ----- reductions ---------------------------------------------------------

    /// Sum of all elements (`1 x 1`).
    pub fn sum(&mut self, a: TensorId) -> TensorId {
        let v = Matrix::scalar(self.value(a).sum());
        self.unary(a, v, Op::Sum(a))
    }

    /// Mean of all elements (`1 x 1`).
    pub fn mean(&mut self, a: TensorId) -> TensorId {
        let v = Matrix::scalar(self.value(a).mean());
        self.unary(a, v, Op::Mean(a))
    }

    /// Column sums (`1 x m`).
    pub fn sum_axis0(&mut self, a: TensorId) -> TensorId {
        let v = self.value(a).sum_axis0();
        self.unary(a, v, Op::SumAxis0(a))
    }

    /// Column means (`1 x m`).
    pub fn mean_axis0(&mut self, a: TensorId) -> TensorId {
        let v = self.value(a).mean_axis0();
        self.unary(a, v, Op::MeanAxis0(a))
    }

    /// Row sums (`n x 1`).
    pub fn sum_axis1(&mut self, a: TensorId) -> TensorId {
        let v = self.value(a).sum_axis1();
        self.unary(a, v, Op::SumAxis1(a))
    }

    /// Row means (`n x 1`).
    pub fn mean_axis1(&mut self, a: TensorId) -> TensorId {
        let v = self.value(a).mean_axis1();
        self.unary(a, v, Op::MeanAxis1(a))
    }

    // ----- structural ops -------------------------------------------------------

    /// Gathers the listed rows (indices may repeat).
    #[track_caller]
    pub fn gather_rows(&mut self, a: TensorId, idx: &[usize]) -> TensorId {
        let v = self.value(a).select_rows(idx);
        self.unary(a, v, Op::GatherRows(a, Rc::from(idx)))
    }

    /// Gathers the listed columns (indices may repeat).
    #[track_caller]
    pub fn gather_cols(&mut self, a: TensorId, idx: &[usize]) -> TensorId {
        let v = self.value(a).select_cols(idx);
        self.unary(a, v, Op::GatherCols(a, Rc::from(idx)))
    }

    /// Horizontal concatenation `[a | b]`.
    #[track_caller]
    pub fn concat_cols(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let v = self.value(a).hstack(self.value(b));
        self.binary(a, b, v, Op::ConcatCols(a, b))
    }

    /// Column slice `[start, end)`.
    #[track_caller]
    pub fn slice_cols(&mut self, a: TensorId, start: usize, end: usize) -> TensorId {
        let v = self.value(a).slice_cols(start, end);
        self.unary(a, v, Op::SliceCols(a, start, end))
    }

    /// Multiplies every element of `a` by the value of the `1 x 1` node `s`.
    #[track_caller]
    pub fn mul_scalar_of(&mut self, a: TensorId, s: TensorId) -> TensorId {
        let sv = self.value(s).item();
        let v = self.value(a).scale(sv);
        self.binary(a, s, v, Op::MulScalarOf(a, s))
    }

    /// Divides every element of `a` by the value of the `1 x 1` node `s`.
    #[track_caller]
    pub fn div_scalar_of(&mut self, a: TensorId, s: TensorId) -> TensorId {
        let sv = self.value(s).item();
        let v = self.value(a).scale(1.0 / sv);
        self.binary(a, s, v, Op::DivScalarOf(a, s))
    }

    // ----- composite helpers ------------------------------------------------------

    /// `a - row` broadcast (composed from [`Graph::add_row`] and [`Graph::neg`]).
    pub fn sub_row(&mut self, a: TensorId, row: TensorId) -> TensorId {
        let n = self.neg(row);
        self.add_row(a, n)
    }

    /// `a / row` broadcast.
    pub fn div_row(&mut self, a: TensorId, row: TensorId) -> TensorId {
        let r = self.recip(row);
        self.mul_row(a, r)
    }

    /// `a / col` broadcast.
    pub fn div_col(&mut self, a: TensorId, col: TensorId) -> TensorId {
        let r = self.recip(col);
        self.mul_col(a, r)
    }

    /// Sum of squares of all elements (`1 x 1`).
    pub fn sumsq(&mut self, a: TensorId) -> TensorId {
        let s = self.square(a);
        self.sum(s)
    }

    /// Squared Euclidean norm of the difference of two same-shape tensors.
    pub fn sq_dist(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let d = self.sub(a, b);
        self.sumsq(d)
    }
}

/// Numerically stable logistic sigmoid.
pub fn stable_sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Numerically stable softplus `ln(1 + e^x)`.
pub fn stable_softplus(x: f64) -> f64 {
    if x > 30.0 {
        x
    } else if x < -30.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

impl Graph {
    /// Reverse-mode sweep seeding `d loss / d loss = 1`.
    ///
    /// # Panics
    /// Panics if `loss` is not a `1 x 1` node.
    #[track_caller]
    pub fn backward(&mut self, loss: TensorId) {
        assert_eq!(
            self.nodes[loss.0].value.shape(),
            (1, 1),
            "backward: loss must be a scalar (1x1) node"
        );
        for node in &mut self.nodes {
            node.grad = None;
        }
        self.nodes[loss.0].grad = Some(Matrix::scalar(1.0));

        for i in (0..self.nodes.len()).rev() {
            if !self.nodes[i].requires_grad {
                continue;
            }
            let Some(g) = self.nodes[i].grad.take() else { continue };
            let op = self.nodes[i].op.clone();
            self.propagate(i, &g, &op);
            self.nodes[i].grad = Some(g);
        }
    }

    fn accumulate(&mut self, target: TensorId, delta: Matrix) {
        if !self.nodes[target.0].requires_grad {
            return;
        }
        match &mut self.nodes[target.0].grad {
            Some(acc) => acc.add_assign(&delta),
            slot @ None => *slot = Some(delta),
        }
    }

    /// Applies the backward rule of `op` for node `i` with upstream gradient `g`.
    fn propagate(&mut self, i: usize, g: &Matrix, op: &Op) {
        match *op {
            Op::Leaf => {}
            Op::Add(a, b) => {
                self.accumulate(a, g.clone());
                self.accumulate(b, g.clone());
            }
            Op::Sub(a, b) => {
                self.accumulate(a, g.clone());
                self.accumulate(b, g.scale(-1.0));
            }
            Op::Mul(a, b) => {
                let da = g.mul(self.value(b));
                let db = g.mul(self.value(a));
                self.accumulate(a, da);
                self.accumulate(b, db);
            }
            Op::Div(a, b) => {
                let bv = self.value(b);
                let da = g.div(bv);
                let db = g.mul(self.value(a)).div(bv).div(bv).scale(-1.0);
                self.accumulate(a, da);
                self.accumulate(b, db);
            }
            Op::MatMul(a, b) => {
                // Skip the (potentially large) delta products for constants.
                if self.requires(a) {
                    let da = g.matmul_nt(self.value(b));
                    self.accumulate(a, da);
                }
                if self.requires(b) {
                    let db = self.value(a).matmul_tn(g);
                    self.accumulate(b, db);
                }
            }
            Op::Transpose(a) => {
                self.accumulate(a, g.transpose());
            }
            Op::AddRow(a, row) => {
                self.accumulate(a, g.clone());
                self.accumulate(row, g.sum_axis0());
            }
            Op::AddCol(a, col) => {
                self.accumulate(a, g.clone());
                self.accumulate(col, g.sum_axis1());
            }
            Op::MulRow(a, row) => {
                let rv = self.value(row).as_slice().to_vec();
                let mut da = g.clone();
                for r in 0..da.rows() {
                    for (x, &s) in da.row_mut(r).iter_mut().zip(&rv) {
                        *x *= s;
                    }
                }
                self.accumulate(a, da);
                let drow = g.mul(self.value(a)).sum_axis0();
                self.accumulate(row, drow);
            }
            Op::MulCol(a, col) => {
                let cv = self.value(col).as_slice().to_vec();
                let mut da = g.clone();
                for (r, &s) in cv.iter().enumerate() {
                    for x in da.row_mut(r) {
                        *x *= s;
                    }
                }
                self.accumulate(a, da);
                let dcol = g.mul(self.value(a)).sum_axis1();
                self.accumulate(col, dcol);
            }
            Op::ColPlusRow(col, row) => {
                self.accumulate(col, g.sum_axis1());
                self.accumulate(row, g.sum_axis0());
            }
            Op::Neg(a) => self.accumulate(a, g.scale(-1.0)),
            Op::Exp(a) => {
                let d = g.mul(&self.nodes[i].value);
                self.accumulate(a, d);
            }
            Op::Ln(a) => {
                let d = g.div(self.value(a));
                self.accumulate(a, d);
            }
            Op::Sqrt(a) => {
                let d = g.zip_map(&self.nodes[i].value, |gv, out| 0.5 * gv / out);
                self.accumulate(a, d);
            }
            Op::Cos(a) => {
                let d = g.zip_map(self.value(a), |gv, x| -gv * x.sin());
                self.accumulate(a, d);
            }
            Op::Sin(a) => {
                let d = g.zip_map(self.value(a), |gv, x| gv * x.cos());
                self.accumulate(a, d);
            }
            Op::Tanh(a) => {
                let d = g.zip_map(&self.nodes[i].value, |gv, out| gv * (1.0 - out * out));
                self.accumulate(a, d);
            }
            Op::Sigmoid(a) => {
                let d = g.zip_map(&self.nodes[i].value, |gv, out| gv * out * (1.0 - out));
                self.accumulate(a, d);
            }
            Op::Softplus(a) => {
                let d = g.zip_map(self.value(a), |gv, x| gv * stable_sigmoid(x));
                self.accumulate(a, d);
            }
            Op::Relu(a) => {
                let d = g.zip_map(self.value(a), |gv, x| if x > 0.0 { gv } else { 0.0 });
                self.accumulate(a, d);
            }
            Op::Elu(a, alpha) => {
                let d = g.zip_map(&self.nodes[i].value, |gv, out| {
                    if out > 0.0 {
                        gv
                    } else {
                        gv * (out + alpha)
                    }
                });
                self.accumulate(a, d);
            }
            Op::Square(a) => {
                let d = g.zip_map(self.value(a), |gv, x| 2.0 * gv * x);
                self.accumulate(a, d);
            }
            Op::Abs(a) => {
                let d = g.zip_map(self.value(a), |gv, x| gv * sign(x));
                self.accumulate(a, d);
            }
            Op::Powf(a, p) => {
                let d = g.zip_map(self.value(a), |gv, x| gv * p * x.powf(p - 1.0));
                self.accumulate(a, d);
            }
            Op::Recip(a) => {
                let d = g.zip_map(&self.nodes[i].value, |gv, out| -gv * out * out);
                self.accumulate(a, d);
            }
            Op::Scale(a, s) => self.accumulate(a, g.scale(s)),
            Op::AddScalar(a) => self.accumulate(a, g.clone()),
            Op::Clamp(a, lo, hi) => {
                let d = g.zip_map(self.value(a), |gv, x| if x > lo && x < hi { gv } else { 0.0 });
                self.accumulate(a, d);
            }
            Op::Sum(a) => {
                let (r, c) = self.value(a).shape();
                self.accumulate(a, Matrix::full(r, c, g.item()));
            }
            Op::Mean(a) => {
                let (r, c) = self.value(a).shape();
                let n = (r * c) as f64;
                self.accumulate(a, Matrix::full(r, c, g.item() / n));
            }
            Op::SumAxis0(a) => {
                let (r, c) = self.value(a).shape();
                let gv = g.as_slice().to_vec();
                let d = Matrix::from_fn(r, c, |_, j| gv[j]);
                self.accumulate(a, d);
            }
            Op::MeanAxis0(a) => {
                let (r, c) = self.value(a).shape();
                let gv = g.as_slice().to_vec();
                let inv = 1.0 / r as f64;
                let d = Matrix::from_fn(r, c, |_, j| gv[j] * inv);
                self.accumulate(a, d);
            }
            Op::SumAxis1(a) => {
                let (r, c) = self.value(a).shape();
                let gv = g.as_slice().to_vec();
                let d = Matrix::from_fn(r, c, |i2, _| gv[i2]);
                self.accumulate(a, d);
            }
            Op::MeanAxis1(a) => {
                let (r, c) = self.value(a).shape();
                let gv = g.as_slice().to_vec();
                let inv = 1.0 / c as f64;
                let d = Matrix::from_fn(r, c, |i2, _| gv[i2] * inv);
                self.accumulate(a, d);
            }
            Op::GatherRows(a, ref idx) => {
                let (r, c) = self.value(a).shape();
                let mut d = Matrix::zeros(r, c);
                for (k, &src) in idx.iter().enumerate() {
                    let grow = g.row(k).to_vec();
                    for (x, gvv) in d.row_mut(src).iter_mut().zip(grow) {
                        *x += gvv;
                    }
                }
                self.accumulate(a, d);
            }
            Op::GatherCols(a, ref idx) => {
                let (r, c) = self.value(a).shape();
                let mut d = Matrix::zeros(r, c);
                for (k, &src) in idx.iter().enumerate() {
                    for row in 0..r {
                        d[(row, src)] += g[(row, k)];
                    }
                }
                self.accumulate(a, d);
            }
            Op::ConcatCols(a, b) => {
                let ac = self.value(a).cols();
                let total = g.cols();
                self.accumulate(a, g.slice_cols(0, ac));
                self.accumulate(b, g.slice_cols(ac, total));
            }
            Op::SliceCols(a, start, end) => {
                let (r, c) = self.value(a).shape();
                let mut d = Matrix::zeros(r, c);
                for row in 0..r {
                    d.row_mut(row)[start..end].copy_from_slice(g.row(row));
                }
                self.accumulate(a, d);
            }
            Op::MulScalarOf(a, s) => {
                let sv = self.value(s).item();
                self.accumulate(a, g.scale(sv));
                let ds = g.dot(self.value(a));
                self.accumulate(s, Matrix::scalar(ds));
            }
            Op::DivScalarOf(a, s) => {
                let sv = self.value(s).item();
                self.accumulate(a, g.scale(1.0 / sv));
                let ds = -g.dot(self.value(a)) / (sv * sv);
                self.accumulate(s, Matrix::scalar(ds));
            }
        }
    }
}

fn sign(x: f64) -> f64 {
    if x > 0.0 {
        1.0
    } else if x < 0.0 {
        -1.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_values_are_eager() {
        let mut g = Graph::new();
        let a = g.constant(Matrix::from_vec(1, 2, vec![3.0, 4.0]));
        let b = g.constant(Matrix::from_vec(1, 2, vec![1.0, 2.0]));
        let s = g.add(a, b);
        assert_eq!(g.value(s).as_slice(), &[4.0, 6.0]);
        let p = g.mul(a, b);
        assert_eq!(g.value(p).as_slice(), &[3.0, 8.0]);
    }

    #[test]
    fn backward_through_linear_chain() {
        // loss = mean((x*w)^2), x = [[1,2],[3,4]], w = [[1],[1]]
        let mut g = Graph::new();
        let x = g.constant(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let w = g.param(Matrix::ones(2, 1));
        let y = g.matmul(x, w); // [3, 7]
        let sq = g.square(y);
        let loss = g.mean(sq); // (9 + 49)/2 = 29
        assert_eq!(g.scalar(loss), 29.0);
        g.backward(loss);
        // dloss/dy = y, so grad_w = x^T y = [1*3+3*7, 2*3+4*7] = [24, 34]
        let gw = g.grad(w).unwrap();
        assert!(gw.approx_eq(&Matrix::from_vec(2, 1, vec![24.0, 34.0]), 1e-12));
    }

    #[test]
    fn constants_get_no_gradient() {
        let mut g = Graph::new();
        let c = g.constant(Matrix::ones(2, 2));
        let w = g.param(Matrix::ones(2, 2));
        let m = g.mul(c, w);
        let loss = g.sum(m);
        g.backward(loss);
        assert!(g.grad(c).is_none());
        assert!(g.grad(w).is_some());
    }

    #[test]
    fn gradient_accumulates_over_reused_nodes() {
        // loss = sum(w) + sum(w) -> grad = 2 * ones
        let mut g = Graph::new();
        let w = g.param(Matrix::ones(2, 2));
        let s1 = g.sum(w);
        let s2 = g.sum(w);
        let loss = g.add(s1, s2);
        g.backward(loss);
        assert!(g.grad(w).unwrap().approx_eq(&Matrix::full(2, 2, 2.0), 1e-12));
    }

    #[test]
    #[should_panic(expected = "backward: loss must be a scalar")]
    fn backward_rejects_non_scalar_loss() {
        let mut g = Graph::new();
        let w = g.param(Matrix::ones(2, 2));
        g.backward(w);
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert!((stable_sigmoid(1000.0) - 1.0).abs() < 1e-12);
        assert!(stable_sigmoid(-1000.0).abs() < 1e-12);
        assert!((stable_sigmoid(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn softplus_is_stable_at_extremes() {
        assert!((stable_softplus(1000.0) - 1000.0).abs() < 1e-9);
        assert!(stable_softplus(-1000.0) >= 0.0);
        assert!((stable_softplus(0.0) - 2.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn gather_rows_backward_scatter_adds() {
        let mut g = Graph::new();
        let w = g.param(Matrix::from_vec(3, 1, vec![1.0, 2.0, 3.0]));
        let gathered = g.gather_rows(w, &[0, 0, 2]);
        let loss = g.sum(gathered);
        g.backward(loss);
        // row 0 used twice, row 1 never, row 2 once
        assert!(g.grad(w).unwrap().approx_eq(&Matrix::from_vec(3, 1, vec![2.0, 0.0, 1.0]), 1e-12));
    }

    #[test]
    fn concat_and_slice_roundtrip_gradients() {
        let mut g = Graph::new();
        let a = g.param(Matrix::ones(2, 2));
        let b = g.param(Matrix::ones(2, 3));
        let cat = g.concat_cols(a, b);
        let sl = g.slice_cols(cat, 1, 4); // one col of a, two cols of b
        let loss = g.sum(sl);
        g.backward(loss);
        assert!(g
            .grad(a)
            .unwrap()
            .approx_eq(&Matrix::from_vec(2, 2, vec![0.0, 1.0, 0.0, 1.0]), 1e-12));
        assert!(g
            .grad(b)
            .unwrap()
            .approx_eq(&Matrix::from_vec(2, 3, vec![1.0, 1.0, 0.0, 1.0, 1.0, 0.0]), 1e-12));
    }

    #[test]
    fn scalar_broadcast_ops() {
        let mut g = Graph::new();
        let a = g.param(Matrix::from_vec(1, 2, vec![2.0, 4.0]));
        let s = g.param(Matrix::scalar(2.0));
        let m = g.mul_scalar_of(a, s);
        assert_eq!(g.value(m).as_slice(), &[4.0, 8.0]);
        let d = g.div_scalar_of(a, s);
        assert_eq!(g.value(d).as_slice(), &[1.0, 2.0]);
        let both = g.add(m, d);
        let loss = g.sum(both);
        g.backward(loss);
        // d(sum(2a + a/2))/da = 2.5 per element
        assert!(g.grad(a).unwrap().approx_eq(&Matrix::full(1, 2, 2.5), 1e-12));
        // d/ds (s*(2+4) + (2+4)/s) at s=2 => 6 - 6/4 = 4.5
        assert!((g.grad(s).unwrap().item() - 4.5).abs() < 1e-12);
    }
}
