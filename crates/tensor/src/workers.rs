//! Persistent worker pool backing every parallel kernel in the workspace.
//!
//! PR 3's kernel layer parallelised with `std::thread::scope`, paying one
//! thread spawn + join per worker *per call*. A single SBRL-HAP fit issues
//! thousands of GEMMs, so at realistic thread counts the spawn overhead was
//! a measurable fraction of the parallel path (and the reason small products
//! were gated to stay inline). This module replaces those per-call spawns
//! with one process-wide pool of **lazily spawned, persistent** worker
//! threads fed by a chunked work queue:
//!
//! * Threads are spawned on first demand, never torn down, and counted by
//!   [`threads_spawned`] — the thread-spawn probe in `sbrl-bench` asserts a
//!   warmed-up training loop spawns **zero** new threads per step.
//! * A parallel call publishes one `Job`: a lifetime-erased task body plus
//!   an atomic chunk cursor. Workers (and the submitting thread itself)
//!   *claim* chunk indices with `fetch_add` and run them; the submitter
//!   blocks until every chunk is done, which is what makes the borrow
//!   erasure sound.
//! * Which thread runs which chunk is scheduling-dependent, but every chunk
//!   writes disjoint output and is computed exactly once, so results are
//!   identical to a serial left-to-right pass — the pool never changes a
//!   floating-point chain in either [`NumericsMode`](crate::kernels::NumericsMode).
//! * A claim loop never blocks on another job: if every pool thread is busy
//!   (including the nested-parallelism case of a kernel invoked from inside
//!   a pool worker), the submitter simply runs all of its own chunks inline.
//!   Deadlock is impossible by construction.
//!
//! Panics inside task bodies are contained per chunk either way: the
//! kernel-facing [`run_tasks`] re-raises them on the submitting thread,
//! while the serving-facing [`run_tasks_catching`] converts them into the
//! typed [`TaskPanicked`] error so a poisoned request cannot take down a
//! server loop. With the `fault-inject` cargo feature the `fault` module
//! adds deterministic panic/stall hooks to the catching path (and only
//! there); without the feature no hook code is compiled at all.

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Hard cap on pool threads; requests beyond it share chunks among the
/// existing workers (results are unaffected — only scheduling changes).
const MAX_POOL_THREADS: usize = 64;

/// Sentinel for "no task panicked" in [`Job::first_panic`].
const NO_PANIC: usize = usize::MAX;

/// Typed error from [`run_tasks_catching`]: at least one task body
/// panicked. The panic was contained to its chunk — every other chunk
/// still ran exactly once and the pool remains fully usable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskPanicked {
    /// Lowest chunk index whose task body panicked.
    pub task: usize,
}

impl fmt::Display for TaskPanicked {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "worker-pool task {} panicked", self.task)
    }
}

impl std::error::Error for TaskPanicked {}

/// One published parallel call: a lifetime-erased task body plus the chunk
/// cursor and completion state.
struct Job {
    /// Erased `&'call (dyn Fn(usize) + Sync)`. Valid for the whole job
    /// lifetime because the submitter blocks in [`run_parallel`] until
    /// `done == total`, and no thread touches `f` after its final chunk.
    f: *const (dyn Fn(usize) + Sync),
    /// Next unclaimed chunk index.
    next: AtomicUsize,
    /// Total number of chunks.
    total: usize,
    /// Chunks fully executed.
    done: AtomicUsize,
    /// Lowest chunk index that panicked ([`NO_PANIC`] when none did);
    /// `fetch_min` keeps the report deterministic under any scheduling.
    first_panic: AtomicUsize,
    /// Completion latch the submitter parks on.
    finished: Mutex<bool>,
    finished_cv: Condvar,
}

// SAFETY: `f` points at a `Sync` closure that outlives the job (the
// submitter blocks until all chunks complete), so sharing the raw pointer
// across threads is sound.
unsafe impl Send for Job {}
// SAFETY: as for `Send` — the erased closure is `Sync` and outlives the job,
// so shared references to it may cross threads.
unsafe impl Sync for Job {}

/// Pool shared state: pending jobs plus the spawned-thread count.
struct PoolState {
    queue: VecDeque<Arc<Job>>,
    spawned: usize,
}

struct Pool {
    state: Mutex<PoolState>,
    work_cv: Condvar,
}

static THREADS_SPAWNED: AtomicU64 = AtomicU64::new(0);

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState { queue: VecDeque::new(), spawned: 0 }),
        work_cv: Condvar::new(),
    })
}

/// Total worker threads ever spawned by the pool (monotonic). The
/// thread-spawn probe asserts this stays flat across warmed-up training
/// steps.
pub fn threads_spawned() -> u64 {
    THREADS_SPAWNED.load(Ordering::Relaxed)
}

/// Number of persistent worker threads currently alive in the pool.
pub fn pool_size() -> usize {
    pool().state.lock().unwrap_or_else(|e| e.into_inner()).spawned
}

/// Grows the pool to at least `want` persistent threads (capped at
/// [`MAX_POOL_THREADS`]); returns without spawning when already large
/// enough — the steady-state path.
fn ensure_threads(want: usize) {
    let want = want.min(MAX_POOL_THREADS);
    // Cheap steady-state exit without contending the lock for long: the
    // count only grows, so a stale low read just re-checks under the lock.
    let mut state = pool().state.lock().unwrap_or_else(|e| e.into_inner());
    while state.spawned < want {
        std::thread::Builder::new()
            .name(format!("sbrl-worker-{}", state.spawned))
            .spawn(worker_loop)
            // lint: allow(panic) — OS refusing a thread at pool warm-up is
            // unrecoverable resource exhaustion; no caller can do better.
            .expect("spawning a pool worker thread");
        THREADS_SPAWNED.fetch_add(1, Ordering::Relaxed);
        state.spawned += 1;
    }
}

/// Claims and executes chunks of `job` until the cursor is exhausted.
fn execute_claims(job: &Job) {
    loop {
        let i = job.next.fetch_add(1, Ordering::Relaxed);
        if i >= job.total {
            return;
        }
        // SAFETY: the submitter keeps the closure alive until `done == total`
        // and this chunk has not yet been counted as done.
        let f = unsafe { &*job.f };
        if catch_unwind(AssertUnwindSafe(|| f(i))).is_err() {
            job.first_panic.fetch_min(i, Ordering::Relaxed);
        }
        if job.done.fetch_add(1, Ordering::AcqRel) + 1 == job.total {
            let mut fin = job.finished.lock().unwrap_or_else(|e| e.into_inner());
            *fin = true;
            job.finished_cv.notify_all();
        }
    }
}

fn worker_loop() {
    let pool = pool();
    loop {
        let job: Arc<Job> = {
            let mut state = pool.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                // Retire jobs whose cursor is exhausted (their remaining
                // chunks are in flight elsewhere; nothing left to claim).
                while let Some(front) = state.queue.front() {
                    if front.next.load(Ordering::Relaxed) >= front.total {
                        state.queue.pop_front();
                    } else {
                        break;
                    }
                }
                if let Some(front) = state.queue.front() {
                    break front.clone();
                }
                state = pool.work_cv.wait(state).unwrap_or_else(|e| e.into_inner());
            }
        };
        execute_claims(&job);
    }
}

/// Shared parallel engine behind [`run_tasks`] and [`run_tasks_catching`]:
/// publishes one job, participates in the claim loop, parks on the latch,
/// and reports the lowest panicking chunk as a typed error.
fn run_parallel(
    total: usize,
    workers: usize,
    f: &(dyn Fn(usize) + Sync),
) -> Result<(), TaskPanicked> {
    ensure_threads(workers.saturating_sub(1));

    // Erase the borrow lifetime: sound because this function does not return
    // until `done == total` (see the latch below).
    // SAFETY: transmutes only the (unexpressed) lifetime of the trait-object
    // pointer; layout is identical.
    let f_erased: *const (dyn Fn(usize) + Sync + 'static) =
        unsafe { std::mem::transmute(f as *const (dyn Fn(usize) + Sync)) };
    let job = Arc::new(Job {
        f: f_erased,
        next: AtomicUsize::new(0),
        total,
        done: AtomicUsize::new(0),
        first_panic: AtomicUsize::new(NO_PANIC),
        finished: Mutex::new(false),
        finished_cv: Condvar::new(),
    });

    {
        let mut state = pool().state.lock().unwrap_or_else(|e| e.into_inner());
        state.queue.push_back(job.clone());
    }
    pool().work_cv.notify_all();

    // The submitter is a full participant: it claims chunks like any worker,
    // which also guarantees forward progress when the pool is saturated or
    // when this call is nested inside a pool worker.
    execute_claims(&job);

    // Park until the in-flight chunks of other workers complete.
    {
        let mut fin = job.finished.lock().unwrap_or_else(|e| e.into_inner());
        while !*fin {
            fin = job.finished_cv.wait(fin).unwrap_or_else(|e| e.into_inner());
        }
    }
    match job.first_panic.load(Ordering::Relaxed) {
        NO_PANIC => Ok(()),
        task => Err(TaskPanicked { task }),
    }
}

/// Runs `f(0)`, `f(1)`, …, `f(total - 1)` exactly once each across the
/// persistent pool plus the calling thread, blocking until every call
/// completes. `workers <= 1` (or `total <= 1`) runs everything inline on
/// the calling thread and never touches the pool — the
/// [`Parallelism::Serial`](crate::kernels::Parallelism) guarantee.
///
/// Chunks are claimed dynamically, so thread assignment is
/// scheduling-dependent; callers must make each `f(i)` independent (write
/// disjoint output), which is exactly the contract of the sharding helpers
/// in [`crate::kernels`].
///
/// # Panics
/// Re-raises (as a panic on the calling thread) if any `f(i)` panicked.
/// Callers that need a recoverable result use [`run_tasks_catching`].
pub fn run_tasks(total: usize, workers: usize, f: &(dyn Fn(usize) + Sync)) {
    if total == 0 {
        return;
    }
    if workers <= 1 || total == 1 {
        // Hot kernel path: no unwind machinery between the caller and `f`.
        for i in 0..total {
            f(i);
        }
        return;
    }
    if let Err(e) = run_parallel(total, workers, f) {
        // lint: allow(panic) — documented re-raise (see `# Panics`); callers
        // needing a recoverable result use `run_tasks_catching`.
        panic!("a worker-pool task panicked (task {})", e.task);
    }
}

/// Like [`run_tasks`], but converts task panics into the typed
/// [`TaskPanicked`] error instead of re-raising them: every chunk still
/// runs exactly once (a panic never cancels the remaining chunks), the
/// pool remains usable, and the lowest panicking chunk index is reported
/// deterministically. This is the serving-path entry point —
/// `FittedModel::try_predict_batched` routes through it so one poisoned
/// shard degrades to an error instead of unwinding through a server loop.
///
/// With the `fault-inject` cargo feature, each task body additionally
/// runs the `fault` hooks (armed panics / stalls) before executing;
/// without the feature this function compiles to the plain catching loop.
pub fn run_tasks_catching(
    total: usize,
    workers: usize,
    f: &(dyn Fn(usize) + Sync),
) -> Result<(), TaskPanicked> {
    if total == 0 {
        return Ok(());
    }
    #[cfg(feature = "fault-inject")]
    let hooked = move |i: usize| {
        fault::on_task(i);
        f(i);
    };
    #[cfg(feature = "fault-inject")]
    let f: &(dyn Fn(usize) + Sync) = &hooked;
    if workers <= 1 || total == 1 {
        let mut first_panic = None;
        for i in 0..total {
            if catch_unwind(AssertUnwindSafe(|| f(i))).is_err() && first_panic.is_none() {
                first_panic = Some(i);
            }
        }
        return match first_panic {
            None => Ok(()),
            Some(task) => Err(TaskPanicked { task }),
        };
    }
    run_parallel(total, workers, f)
}

/// Deterministic fault hooks for the catching path (compiled only with the
/// `fault-inject` cargo feature; production builds carry none of this).
///
/// Faults are armed by *chunk index*, fire **one-shot** (the first matching
/// task disarms the fault as it fires), and are observed only by
/// [`run_tasks_catching`] — the kernel hot path through [`run_tasks`] is
/// never instrumented. Arming by chunk index (rather than arrival order)
/// is what makes injection deterministic: each chunk index runs exactly
/// once regardless of which pool thread claims it.
#[cfg(feature = "fault-inject")]
pub mod fault {
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    const UNARMED: usize = usize::MAX;
    static PANIC_AT: AtomicUsize = AtomicUsize::new(UNARMED);
    static STALL_AT: AtomicUsize = AtomicUsize::new(UNARMED);
    static STALL_MS: AtomicU64 = AtomicU64::new(0);

    /// Arms a one-shot panic in the next catching-path task with chunk
    /// index `index`.
    pub fn arm_panic_task(index: usize) {
        PANIC_AT.store(index, Ordering::SeqCst);
    }

    /// Arms a one-shot stall of `millis` milliseconds in the next
    /// catching-path task with chunk index `index`.
    pub fn arm_stall_task(index: usize, millis: u64) {
        STALL_MS.store(millis, Ordering::SeqCst);
        STALL_AT.store(index, Ordering::SeqCst);
    }

    /// Disarms every armed pool fault.
    pub fn disarm() {
        PANIC_AT.store(UNARMED, Ordering::SeqCst);
        STALL_AT.store(UNARMED, Ordering::SeqCst);
    }

    /// Fires any fault armed for chunk `index` (called at the top of every
    /// catching-path task body). The compare-exchange makes each armed
    /// fault fire exactly once even when chunks run concurrently.
    pub(super) fn on_task(index: usize) {
        if STALL_AT.compare_exchange(index, UNARMED, Ordering::SeqCst, Ordering::SeqCst).is_ok() {
            std::thread::sleep(std::time::Duration::from_millis(STALL_MS.load(Ordering::SeqCst)));
        }
        if PANIC_AT.compare_exchange(index, UNARMED, Ordering::SeqCst, Ordering::SeqCst).is_ok() {
            // lint: allow(panic) — the injected fault IS a deliberate panic;
            // the catching path converts it into `TaskPanicked`.
            panic!("injected fault: pool task {index} panicked");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn runs_every_task_exactly_once() {
        for (total, workers) in [(1usize, 4usize), (7, 2), (64, 4), (100, 3), (5, 100)] {
            let hits: Vec<AtomicU32> = (0..total).map(|_| AtomicU32::new(0)).collect();
            run_tasks(total, workers, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "task {i} ({total}/{workers})");
            }
        }
    }

    #[test]
    fn serial_requests_never_touch_the_pool() {
        let before = threads_spawned();
        let counter = AtomicU32::new(0);
        run_tasks(16, 1, &|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 16);
        assert_eq!(threads_spawned(), before, "workers <= 1 must stay inline");
    }

    #[test]
    fn pool_threads_are_reused_across_calls() {
        // Warm the pool, then verify repeated parallel calls spawn nothing.
        run_tasks(8, 4, &|_| {});
        let warmed = threads_spawned();
        for _ in 0..50 {
            run_tasks(8, 4, &|_| {});
        }
        assert_eq!(threads_spawned(), warmed, "steady-state calls must not spawn");
    }

    #[test]
    fn nested_parallel_calls_complete() {
        // A task that itself submits a parallel call must not deadlock: the
        // inner submitter claims its own chunks when no worker is free.
        let outer_hits = AtomicU32::new(0);
        let inner_hits = AtomicU32::new(0);
        run_tasks(4, 4, &|_| {
            outer_hits.fetch_add(1, Ordering::Relaxed);
            run_tasks(4, 4, &|_| {
                inner_hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(outer_hits.load(Ordering::Relaxed), 4);
        assert_eq!(inner_hits.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn task_panics_propagate_to_the_submitter() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_tasks(8, 4, &|i| {
                if i == 3 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err(), "submitter must re-raise worker panics");
        // The pool stays usable afterwards.
        let counter = AtomicU32::new(0);
        run_tasks(8, 4, &|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn catching_reports_the_lowest_panicking_task() {
        for workers in [1usize, 4] {
            let hits: Vec<AtomicU32> = (0..8).map(|_| AtomicU32::new(0)).collect();
            let err = run_tasks_catching(8, workers, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
                if i == 2 || i == 5 {
                    panic!("boom {i}");
                }
            })
            .unwrap_err();
            assert_eq!(err, TaskPanicked { task: 2 }, "workers = {workers}");
            // A panic never cancels the remaining chunks.
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "task {i} (workers {workers})");
            }
        }
    }

    #[test]
    fn catching_succeeds_and_display_names_the_task() {
        let counter = AtomicU32::new(0);
        run_tasks_catching(6, 3, &|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        })
        .expect("no task panicked");
        assert_eq!(counter.load(Ordering::Relaxed), 6);
        assert!(TaskPanicked { task: 4 }.to_string().contains("task 4"));
    }

    #[cfg(feature = "fault-inject")]
    mod fault_injection {
        use super::*;
        use std::sync::Mutex;

        /// Serializes the gated tests: the fault hooks are process globals.
        static FAULT_LOCK: Mutex<()> = Mutex::new(());

        #[test]
        fn armed_panic_fires_once_and_is_typed() {
            let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
            fault::arm_panic_task(1);
            let err = run_tasks_catching(4, 2, &|_| {}).unwrap_err();
            assert_eq!(err, TaskPanicked { task: 1 });
            // One-shot: the very next call is clean without disarming.
            run_tasks_catching(4, 2, &|_| {}).expect("fault already fired");
        }

        #[test]
        fn armed_stall_delays_but_completes() {
            let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
            fault::arm_stall_task(0, 30);
            let started = std::time::Instant::now();
            run_tasks_catching(2, 1, &|_| {}).expect("a stall is not a failure");
            assert!(started.elapsed() >= std::time::Duration::from_millis(30));
            fault::disarm();
        }

        #[test]
        fn disarm_clears_armed_faults() {
            let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
            fault::arm_panic_task(0);
            fault::disarm();
            run_tasks_catching(3, 2, &|_| {}).expect("disarmed faults must not fire");
        }
    }
}
