//! # sbrl-tensor
//!
//! Dense `f64` matrix library and reverse-mode automatic differentiation
//! engine — the numerical substrate of the SBRL-HAP reproduction
//! (*Stable Heterogeneous Treatment Effect Estimation across
//! Out-of-Distribution Populations*, ICDE 2024).
//!
//! The paper's training objective differentiates custom losses (weighted
//! integral probability metrics, a Sinkhorn loop, weighted HSIC with random
//! Fourier features) with respect to both network parameters and per-sample
//! weights. Mainstream Rust DL bindings are not mature enough for these
//! custom reweighting losses, so this crate provides a small, fully-tested
//! define-by-run tape ([`Graph`]) over a plain matrix type ([`Matrix`]).
//!
//! Modules:
//! * [`matrix`] — the dense matrix type and BLAS-free operations.
//! * [`kernels`] — the cache-blocked, optionally multi-threaded GEMM layer
//!   and the workspace-wide [`kernels::Parallelism`] /
//!   [`kernels::NumericsMode`] knobs every matrix product funnels through.
//! * [`workers`] — the persistent worker pool (lazily spawned threads, a
//!   chunked work queue) that executes every parallel kernel without
//!   per-call thread spawns.
//! * [`graph`] — the autodiff tape (`Graph`, `TensorId`, ~40 primitive ops),
//!   reusable across optimisation steps via [`Graph::reset`].
//! * [`pool`] — the shape-keyed [`pool::BufferPool`] that keeps a reset
//!   tape's value/gradient buffers alive across steps (allocation-free
//!   steady-state training).
//! * [`rng`] — seeded sampling helpers (Box–Muller normals, permutations).
//! * [`gradcheck`] — finite-difference gradient verification used throughout
//!   the workspace's test suites.

#![warn(missing_docs)]

pub mod gradcheck;
pub mod graph;
pub mod kernels;
pub mod matrix;
pub mod pool;
pub mod rng;
pub mod workers;

pub use graph::{stable_sigmoid, stable_softplus, Graph, TensorId};
pub use kernels::{NumericsMode, Parallelism};
pub use matrix::Matrix;
pub use pool::BufferPool;
