//! Train/validation/test partitioning.

use rand::rngs::StdRng;
use sbrl_tensor::rng::permutation;

use crate::dataset::CausalDataset;

/// A train/validation/test partition of one dataset.
#[derive(Clone, Debug)]
pub struct DataSplit {
    /// Training fold.
    pub train: CausalDataset,
    /// Validation fold (early stopping / model selection).
    pub val: CausalDataset,
    /// Held-out test fold.
    pub test: CausalDataset,
}

/// Splits index range `0..n` into `(train, val)` with `val_fraction` of the
/// samples going to validation (the paper uses a 70/30 split, Sec. V-E).
pub fn train_val_indices(
    rng: &mut StdRng,
    n: usize,
    val_fraction: f64,
) -> (Vec<usize>, Vec<usize>) {
    let perm = permutation(rng, n);
    let n_val = ((n as f64) * val_fraction.clamp(0.0, 1.0)).round() as usize;
    let n_val = n_val.min(n.saturating_sub(1)).max(usize::from(n > 1));
    let (val, train) = perm.split_at(n_val);
    let mut train = train.to_vec();
    let mut val = val.to_vec();
    train.sort_unstable();
    val.sort_unstable();
    (train, val)
}

/// Splits a dataset into train/val by random permutation.
pub fn split_train_val(
    rng: &mut StdRng,
    data: &CausalDataset,
    val_fraction: f64,
) -> (CausalDataset, CausalDataset) {
    let (tr, va) = train_val_indices(rng, data.n(), val_fraction);
    (data.select(&tr), data.select(&va))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::OutcomeKind;
    use sbrl_tensor::rng::rng_from_seed;
    use sbrl_tensor::Matrix;

    fn toy(n: usize) -> CausalDataset {
        CausalDataset {
            x: Matrix::from_fn(n, 2, |i, j| (i * 2 + j) as f64),
            t: (0..n).map(|i| (i % 2) as f64).collect(),
            yf: (0..n).map(|i| i as f64).collect(),
            ycf: None,
            mu0: None,
            mu1: None,
            outcome: OutcomeKind::Continuous,
        }
    }

    #[test]
    fn split_partitions_disjointly_and_completely() {
        let mut rng = rng_from_seed(0);
        let (tr, va) = train_val_indices(&mut rng, 100, 0.3);
        assert_eq!(tr.len() + va.len(), 100);
        assert_eq!(va.len(), 30);
        let mut all: Vec<usize> = tr.iter().chain(&va).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_datasets_carry_matching_rows() {
        let mut rng = rng_from_seed(1);
        let d = toy(20);
        let (train, val) = split_train_val(&mut rng, &d, 0.25);
        assert_eq!(train.n() + val.n(), 20);
        assert_eq!(val.n(), 5);
        // yf encodes the original index; x row 0 must match.
        for k in 0..val.n() {
            let orig = val.yf[k] as usize;
            assert_eq!(val.x.row(k), d.x.row(orig));
        }
    }

    #[test]
    fn degenerate_fractions_are_clamped() {
        let mut rng = rng_from_seed(2);
        let (tr, va) = train_val_indices(&mut rng, 10, 0.0);
        assert_eq!(va.len(), 1, "validation never empty for n > 1");
        assert_eq!(tr.len(), 9);
        let (tr2, va2) = train_val_indices(&mut rng, 10, 1.0);
        assert!(va2.len() <= 9 && !tr2.is_empty());
    }
}
