//! # sbrl-data
//!
//! Dataset substrate of the SBRL-HAP reproduction: the causal dataset
//! abstraction, the paper's biased-sampling shift mechanism, and the three
//! benchmarks of its evaluation section —
//!
//! * [`synthetic`] — `Syn_mI_mC_mA_mV` with bias rate `rho` (Sec. V-D);
//! * [`twins`] — Twins-like simulator with the paper's augmentation and
//!   partitioning protocol (Sec. V-E1);
//! * [`ihdp`] — IHDP-like simulator with NPCI response surfaces and the
//!   continuous-covariate shift (Sec. V-E1).
//!
//! Real Twins/IHDP files are unavailable offline; DESIGN.md §5 documents why
//! the simulators preserve the behaviour the paper's experiments rely on.

pub mod dataset;
pub mod ihdp;
pub mod registry;
pub mod sampling;
pub mod splits;
pub mod synthetic;
pub mod twins;

pub use dataset::{CausalDataset, DataError, OutcomeKind, Scaler};
pub use ihdp::{IhdpConfig, IhdpSimulator, ResponseSurface};
pub use registry::{DatasetGenerator, DatasetOptions, DatasetRegistry};
pub use sampling::{selection_log_weight, weighted_sample_without_replacement};
pub use splits::{split_train_val, train_val_indices, DataSplit};
pub use synthetic::{SyntheticConfig, SyntheticProcess, PAPER_BIAS_RATES, TRAIN_BIAS_RATE};
pub use twins::{TwinsConfig, TwinsSimulator};
