//! The paper's synthetic benchmark `Syn_mI_mC_mA_mV` (Sec. V-D1).
//!
//! Covariates `X = [I | C | A | V]` are split into instruments (affect only
//! the treatment), confounders (affect treatment and outcome), adjustments
//! (affect only the outcome) and unstable noise features `V`. The causal
//! mechanism — treatment assignment and the two potential-outcome surfaces —
//! is drawn once per replication ([`SyntheticProcess`]) and shared by every
//! environment; environments differ only in the covariate distribution,
//! induced by bias-rate-`rho` sampling on the unstable features
//! (`crate::sampling`). This realises exactly the paper's setting:
//! `P(T, Y | X)` invariant, `P(X)` shifting.
//!
//! Generation recipe (verbatim from the paper):
//! * `X_j ~ N(0, 1)` for all `m = m_I + m_C + m_A + m_V` coordinates;
//! * `t ~ B(sigmoid(z))`, `z = theta_t . X_IC / 10 + xi`,
//!   `theta_t ~ U(8, 16)^(m_I + m_C)`, `xi ~ N(0, 1)`;
//! * `z0 = theta_y0 . X_CA / (10 (m_C + m_A))`,
//!   `z1 = theta_y1 . X_CA^2 / (10 (m_C + m_A))`,
//!   `Y0 = sign(max(0, z0 - mean(z0)))`, `Y1 = sign(max(0, z1 - mean(z1)))`
//!   (binary potential outcomes thresholded at the *population* mean, which
//!   we estimate once from a large unbiased reference pool so the mechanism
//!   stays fixed across environments);
//! * environment `rho`: sample `n` records from an unbiased pool with
//!   probability `prod_i |rho|^(-10 |Y1 - Y0 - sign(rho) X_vi|)`.

use rand::rngs::StdRng;
use sbrl_tensor::rng::{randn, rng_from_seed, sample_standard_normal, sample_uniform};
use sbrl_tensor::stable_sigmoid;

use crate::dataset::{CausalDataset, OutcomeKind};
use crate::sampling::{selection_log_weight, weighted_sample_without_replacement};

/// Dimension/shape configuration of a synthetic benchmark.
#[derive(Clone, Copy, Debug)]
pub struct SyntheticConfig {
    /// Number of instrumental variables `m_I`.
    pub m_instrument: usize,
    /// Number of confounders `m_C`.
    pub m_confounder: usize,
    /// Number of adjustment variables `m_A`.
    pub m_adjustment: usize,
    /// Number of unstable variables `m_V`.
    pub m_unstable: usize,
    /// Oversampling factor of the unbiased pool behind each biased draw.
    pub pool_factor: usize,
    /// Reference-pool size used to estimate the fixed outcome thresholds.
    pub threshold_pool: usize,
}

impl SyntheticConfig {
    /// The paper's `Syn_8_8_8_2` setting.
    pub fn syn_8_8_8_2() -> Self {
        Self {
            m_instrument: 8,
            m_confounder: 8,
            m_adjustment: 8,
            m_unstable: 2,
            pool_factor: 10,
            threshold_pool: 20_000,
        }
    }

    /// The paper's `Syn_16_16_16_2` setting.
    pub fn syn_16_16_16_2() -> Self {
        Self { m_instrument: 16, m_confounder: 16, m_adjustment: 16, ..Self::syn_8_8_8_2() }
    }

    /// Total covariate dimension `m`.
    pub fn dim(&self) -> usize {
        self.m_instrument + self.m_confounder + self.m_adjustment + self.m_unstable
    }

    /// Dataset name in the paper's `Syn_mI_mC_mA_mV` convention.
    pub fn name(&self) -> String {
        format!(
            "Syn_{}_{}_{}_{}",
            self.m_instrument, self.m_confounder, self.m_adjustment, self.m_unstable
        )
    }

    /// Column range of the unstable features within `X`.
    pub fn unstable_columns(&self) -> std::ops::Range<usize> {
        let start = self.m_instrument + self.m_confounder + self.m_adjustment;
        start..start + self.m_unstable
    }
}

/// One replication's frozen causal mechanism.
#[derive(Clone, Debug)]
pub struct SyntheticProcess {
    config: SyntheticConfig,
    theta_t: Vec<f64>,
    theta_y0: Vec<f64>,
    theta_y1: Vec<f64>,
    threshold0: f64,
    threshold1: f64,
}

impl SyntheticProcess {
    /// Draws the mechanism coefficients (and calibrates the outcome
    /// thresholds on an unbiased reference pool) from `seed`.
    pub fn new(config: SyntheticConfig, seed: u64) -> Self {
        let mut rng = rng_from_seed(seed);
        let n_ic = config.m_instrument + config.m_confounder;
        let n_ca = config.m_confounder + config.m_adjustment;
        let theta_t: Vec<f64> = (0..n_ic).map(|_| sample_uniform(&mut rng, 8.0, 16.0)).collect();
        let theta_y0: Vec<f64> = (0..n_ca).map(|_| sample_uniform(&mut rng, 8.0, 16.0)).collect();
        let theta_y1: Vec<f64> = (0..n_ca).map(|_| sample_uniform(&mut rng, 8.0, 16.0)).collect();

        let mut process =
            Self { config, theta_t, theta_y0, theta_y1, threshold0: 0.0, threshold1: 0.0 };

        // Estimate the population means of z0 / z1 from an unbiased pool.
        let pool = randn(&mut rng, config.threshold_pool, config.dim());
        let mut sum0 = 0.0;
        let mut sum1 = 0.0;
        for i in 0..pool.rows() {
            let (z0, z1) = process.outcome_latents(pool.row(i));
            sum0 += z0;
            sum1 += z1;
        }
        process.threshold0 = sum0 / pool.rows() as f64;
        process.threshold1 = sum1 / pool.rows() as f64;
        process
    }

    /// The benchmark configuration of this process.
    pub fn config(&self) -> &SyntheticConfig {
        &self.config
    }

    fn outcome_latents(&self, x: &[f64]) -> (f64, f64) {
        let c = &self.config;
        let ca = &x[c.m_instrument..c.m_instrument + c.m_confounder + c.m_adjustment];
        let denom = 10.0 * (c.m_confounder + c.m_adjustment) as f64;
        let z0: f64 = ca.iter().zip(&self.theta_y0).map(|(&x, &th)| th * x).sum::<f64>() / denom;
        let z1: f64 =
            ca.iter().zip(&self.theta_y1).map(|(&x, &th)| th * x * x).sum::<f64>() / denom;
        (z0, z1)
    }

    fn treatment_logit(&self, x: &[f64], xi: f64) -> f64 {
        let c = &self.config;
        let ic = &x[..c.m_instrument + c.m_confounder];
        ic.iter().zip(&self.theta_t).map(|(&x, &th)| th * x).sum::<f64>() / 10.0 + xi
    }

    /// Generates one environment: `n` units sampled with bias rate `rho`.
    ///
    /// `rho.abs()` must exceed 1 (the paper uses
    /// `rho in {±1.3, ±1.5, ±2.5, ±3}`).
    #[track_caller]
    pub fn generate(&self, rho: f64, n: usize, seed: u64) -> CausalDataset {
        assert!(rho.abs() > 1.0, "bias rate must satisfy |rho| > 1, got {rho}");
        let c = &self.config;
        let mut rng = rng_from_seed(seed ^ 0x5b5b_0001);
        let pool_n = n * c.pool_factor.max(1);

        let x_pool = randn(&mut rng, pool_n, c.dim());
        let mut y0 = Vec::with_capacity(pool_n);
        let mut y1 = Vec::with_capacity(pool_n);
        let mut t = Vec::with_capacity(pool_n);
        for i in 0..pool_n {
            let row = x_pool.row(i);
            let (z0, z1) = self.outcome_latents(row);
            let y0i = if z0 - self.threshold0 > 0.0 { 1.0 } else { 0.0 };
            let y1i = if z1 - self.threshold1 > 0.0 { 1.0 } else { 0.0 };
            y0.push(y0i);
            y1.push(y1i);
            let xi = sample_standard_normal(&mut rng);
            let p = stable_sigmoid(self.treatment_logit(row, xi));
            t.push(if rng_coin(&mut rng, p) { 1.0 } else { 0.0 });
        }

        // Biased environment selection on the unstable block.
        let v_cols = c.unstable_columns();
        let log_w: Vec<f64> = (0..pool_n)
            .map(|i| {
                let row = x_pool.row(i);
                selection_log_weight(rho, y1[i] - y0[i], &row[v_cols.clone()])
            })
            .collect();
        let idx = weighted_sample_without_replacement(&mut rng, &log_w, n);

        let x = x_pool.select_rows(&idx);
        let pick = |v: &[f64]| idx.iter().map(|&i| v[i]).collect::<Vec<f64>>();
        let t = pick(&t);
        let y0 = pick(&y0);
        let y1 = pick(&y1);
        let yf: Vec<f64> = t
            .iter()
            .zip(y0.iter().zip(&y1))
            .map(|(&t, (&y0, &y1))| if t > 0.5 { y1 } else { y0 })
            .collect();
        let ycf: Vec<f64> = t
            .iter()
            .zip(y0.iter().zip(&y1))
            .map(|(&t, (&y0, &y1))| if t > 0.5 { y0 } else { y1 })
            .collect();

        CausalDataset {
            x,
            t,
            yf,
            ycf: Some(ycf),
            mu0: Some(y0),
            mu1: Some(y1),
            outcome: OutcomeKind::Binary,
        }
    }
}

fn rng_coin(rng: &mut StdRng, p: f64) -> bool {
    sbrl_tensor::rng::sample_bernoulli(rng, p)
}

/// The bias rates evaluated in Table I / Fig. 3 of the paper.
pub const PAPER_BIAS_RATES: [f64; 8] = [-3.0, -2.5, -1.5, -1.3, 1.3, 1.5, 2.5, 3.0];

/// The training bias rate used throughout the paper's experiments.
pub const TRAIN_BIAS_RATE: f64 = 2.5;

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> SyntheticConfig {
        SyntheticConfig {
            m_instrument: 4,
            m_confounder: 4,
            m_adjustment: 4,
            m_unstable: 2,
            pool_factor: 5,
            threshold_pool: 2000,
        }
    }

    #[test]
    fn shapes_and_validity() {
        let p = SyntheticProcess::new(small_config(), 7);
        let d = p.generate(2.5, 500, 1);
        assert_eq!(d.n(), 500);
        assert_eq!(d.dim(), 14);
        d.validate().unwrap();
        assert_eq!(d.outcome, OutcomeKind::Binary);
    }

    #[test]
    fn outcomes_are_binary_and_counterfactuals_consistent() {
        let p = SyntheticProcess::new(small_config(), 3);
        let d = p.generate(1.5, 300, 2);
        for i in 0..d.n() {
            assert!(d.yf[i] == 0.0 || d.yf[i] == 1.0);
            let y0 = d.mu0.as_ref().unwrap()[i];
            let y1 = d.mu1.as_ref().unwrap()[i];
            let expected = if d.t[i] > 0.5 { y1 } else { y0 };
            assert_eq!(d.yf[i], expected);
        }
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let p = SyntheticProcess::new(small_config(), 5);
        let a = p.generate(2.5, 100, 42);
        let b = p.generate(2.5, 100, 42);
        assert!(a.x.approx_eq(&b.x, 0.0));
        assert_eq!(a.t, b.t);
        assert_eq!(a.yf, b.yf);
        let c = p.generate(2.5, 100, 43);
        assert!(!a.x.approx_eq(&c.x, 1e-9));
    }

    #[test]
    fn selection_bias_is_present() {
        // Confounders influence treatment: treated and control means of a
        // confounder column should differ noticeably.
        let p = SyntheticProcess::new(small_config(), 11);
        let d = p.generate(2.5, 2000, 1);
        let treated = d.treated_indices();
        let control = d.control_indices();
        let col = p.config().m_instrument; // first confounder
        let mt: f64 = treated.iter().map(|&i| d.x[(i, col)]).sum::<f64>() / treated.len() as f64;
        let mc: f64 = control.iter().map(|&i| d.x[(i, col)]).sum::<f64>() / control.len() as f64;
        assert!((mt - mc).abs() > 0.1, "selection bias too weak: {mt} vs {mc}");
    }

    #[test]
    fn bias_rate_sign_controls_unstable_correlation() {
        let p = SyntheticProcess::new(small_config(), 13);
        let col = p.config().unstable_columns().start;
        let mut cors = Vec::new();
        for rho in [2.5, -2.5] {
            let d = p.generate(rho, 2000, 1);
            let ite = d.true_ite().unwrap();
            let xv: Vec<f64> = (0..d.n()).map(|i| d.x[(i, col)]).collect();
            let me = ite.iter().sum::<f64>() / ite.len() as f64;
            let mx = xv.iter().sum::<f64>() / xv.len() as f64;
            let cov: f64 = ite.iter().zip(&xv).map(|(&e, &x)| (e - me) * (x - mx)).sum::<f64>()
                / ite.len() as f64;
            cors.push(cov);
        }
        assert!(cors[0] > 0.02, "rho=2.5 should induce positive correlation, got {}", cors[0]);
        assert!(cors[1] < -0.02, "rho=-2.5 should induce negative correlation, got {}", cors[1]);
    }

    #[test]
    fn environments_share_the_causal_mechanism() {
        // P(Y|X,T) must be invariant: the same covariate row run through the
        // process yields identical potential outcomes regardless of rho.
        let p = SyntheticProcess::new(small_config(), 17);
        let (z0, z1) = p.outcome_latents(&[0.3; 14]);
        let (z0b, z1b) = p.outcome_latents(&[0.3; 14]);
        assert_eq!((z0, z1), (z0b, z1b));
    }

    #[test]
    fn stronger_shift_induces_stronger_spurious_correlation() {
        // |rho| controls the tilt strength: the correlation between the
        // unstable feature and the effect must grow with |rho| ("the higher
        // |rho| is, the stronger correlation between Y and X_V").
        let p = SyntheticProcess::new(small_config(), 19);
        let col = p.config().unstable_columns().start;
        let corr = |d: &CausalDataset| {
            let ite = d.true_ite().unwrap();
            let xv: Vec<f64> = (0..d.n()).map(|i| d.x[(i, col)]).collect();
            let me = ite.iter().sum::<f64>() / ite.len() as f64;
            let mx = xv.iter().sum::<f64>() / xv.len() as f64;
            let cov: f64 = ite.iter().zip(&xv).map(|(&e, &x)| (e - me) * (x - mx)).sum::<f64>();
            let ve: f64 = ite.iter().map(|&e| (e - me) * (e - me)).sum::<f64>();
            let vx: f64 = xv.iter().map(|&x| (x - mx) * (x - mx)).sum::<f64>();
            cov / (ve.sqrt() * vx.sqrt()).max(1e-12)
        };
        let near = corr(&p.generate(1.3, 3000, 1));
        let far = corr(&p.generate(3.0, 3000, 1));
        assert!(
            far > near + 0.05,
            "rho=3 correlation {far} should exceed rho=1.3 correlation {near}"
        );
    }

    #[test]
    fn paper_configs_have_expected_dims() {
        assert_eq!(SyntheticConfig::syn_8_8_8_2().dim(), 26);
        assert_eq!(SyntheticConfig::syn_16_16_16_2().dim(), 50);
        assert_eq!(SyntheticConfig::syn_8_8_8_2().name(), "Syn_8_8_8_2");
    }
}
