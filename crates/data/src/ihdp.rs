//! IHDP-like benchmark (Sec. V-E1 of the paper).
//!
//! The Infant Health and Development Program benchmark (Hill 2011) is itself
//! semi-synthetic: real RCT covariates (747 units — 139 treated, 608 control
//! — with 25 covariates, 6 continuous and 19 binary), selection bias induced
//! by removing a biased subset of the treated group, and outcomes simulated
//! by the NPCI package. The covariate files are not available offline, so
//! this module simulates covariates with matched dimensionality, types and
//! correlation structure, and then applies the published protocol verbatim
//! (substitution argument in DESIGN.md §5):
//!
//! * treatment assignment confounded through a logistic model on the
//!   covariates, calibrated to exactly 139 treated units;
//! * response surfaces from NPCI: the nonlinear/heterogeneous surface
//!   (`mu0 = exp((X + 0.5) beta)`, `mu1 = X beta - omega`, with `omega`
//!   calibrated so the average effect on the treated is 4) used by the
//!   CFR/TARNet line of work, plus the simpler linear surface as an option;
//! * continuous outcomes `y = mu + N(0, 1)`, re-simulated per replication
//!   (the paper averages 100 replications);
//! * OOD test fold: 10% of records drawn with bias-rate `rho` sampling where
//!   `D_i` is computed on the six *continuous* covariates (standardised), a
//!   deliberately harder shift because continuous covariates can be causal.

use sbrl_tensor::rng::{rng_from_seed, sample_bernoulli, sample_standard_normal, sample_uniform};
use sbrl_tensor::{stable_sigmoid, Matrix};

use crate::dataset::{CausalDataset, DataError, OutcomeKind, Scaler};
use crate::sampling::weighted_sample_without_replacement;
use crate::splits::{train_val_indices, DataSplit};

/// Which NPCI response surface to simulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResponseSurface {
    /// Linear surface with a constant effect of 4 (Hill's surface A).
    Linear,
    /// Log-linear heterogeneous surface (Hill's surface B / NPCI setting "A"
    /// as used by the CFR line of work and this paper).
    Nonlinear,
}

/// Configuration of the IHDP-like benchmark.
#[derive(Clone, Copy, Debug)]
pub struct IhdpConfig {
    /// Number of units (paper: 747).
    pub n: usize,
    /// Number of treated units (paper: 139).
    pub n_treated: usize,
    /// Bias rate for the OOD test sampling.
    pub rho: f64,
    /// Fraction of records biasedly sampled into the test fold (paper: 10%).
    pub test_fraction: f64,
    /// Fraction of the remainder assigned to validation (paper: 30%).
    pub val_fraction: f64,
    /// Response surface.
    pub surface: ResponseSurface,
}

impl Default for IhdpConfig {
    fn default() -> Self {
        Self {
            n: 747,
            n_treated: 139,
            rho: -2.5,
            test_fraction: 0.1,
            val_fraction: 0.3,
            surface: ResponseSurface::Nonlinear,
        }
    }
}

/// Number of continuous covariates (columns `0..6`).
pub const NUM_CONTINUOUS: usize = 6;
/// Number of binary covariates (columns `6..25`).
pub const NUM_BINARY: usize = 19;
/// Total covariate dimension (25).
pub const TOTAL_COVARIATES: usize = NUM_CONTINUOUS + NUM_BINARY;

/// The IHDP-like generator: covariates and treatment are frozen per instance,
/// outcomes are re-simulated per replication.
pub struct IhdpSimulator {
    config: IhdpConfig,
    x: Matrix,
    t: Vec<f64>,
    /// Standardised continuous block used for the shift mechanism.
    x_cont_std: Matrix,
    /// Fully standardised covariates used by the response surfaces (NPCI
    /// computes the surfaces on standardised covariates; raw covariates
    /// would give the exponential surface million-scale tails).
    x_std: Matrix,
}

impl IhdpSimulator {
    /// Generates covariates and the confounded treatment assignment.
    ///
    /// # Panics
    ///
    /// Panics on a malformed configuration; use [`Self::try_new`] to get the
    /// typed [`DataError`] instead.
    pub fn new(config: IhdpConfig, seed: u64) -> Self {
        // lint: allow(panic) — documented (`# Panics`); `try_new` is the
        // typed route.
        Self::try_new(config, seed).unwrap_or_else(|e| panic!("invalid IhdpConfig: {e}"))
    }

    /// Fallible variant of [`Self::new`]: rejects malformed configurations
    /// with [`DataError::InvalidSpec`] instead of panicking.
    pub fn try_new(config: IhdpConfig, seed: u64) -> Result<Self, DataError> {
        if config.n_treated == 0 || config.n_treated >= config.n {
            return Err(DataError::InvalidSpec {
                what: "ihdp.n_treated",
                message: format!(
                    "need 0 < n_treated < n, got n_treated={} with n={}",
                    config.n_treated, config.n
                ),
            });
        }
        for (what, f) in [
            ("ihdp.test_fraction", config.test_fraction),
            ("ihdp.val_fraction", config.val_fraction),
        ] {
            if !f.is_finite() || !(0.0..1.0).contains(&f) {
                return Err(DataError::InvalidSpec {
                    what,
                    message: format!("need a finite fraction in [0, 1), got {f}"),
                });
            }
        }
        if !config.rho.is_finite() || config.rho.abs() <= 1.0 {
            return Err(DataError::InvalidSpec {
                what: "ihdp.rho",
                message: format!("need a finite bias rate with |rho| > 1, got {}", config.rho),
            });
        }
        let mut rng = rng_from_seed(seed ^ IHDP_TAG);
        let n = config.n;
        let mut x = Matrix::zeros(n, TOTAL_COVARIATES);
        for i in 0..n {
            // Latent factors: infant health, family socioeconomic status.
            let health = sample_standard_normal(&mut rng);
            let ses = sample_standard_normal(&mut rng);
            let row = x.row_mut(i);
            // Continuous block (standard IHDP: birth weight, head
            // circumference, weeks preterm, birth order, neonatal index,
            // mother's age).
            row[0] = health + 0.4 * sample_standard_normal(&mut rng); // birth weight (std)
            row[1] = 0.8 * health + 0.5 * sample_standard_normal(&mut rng); // head circumference
            row[2] = -0.7 * health + 0.6 * sample_standard_normal(&mut rng); // weeks preterm
            row[3] = sample_uniform(&mut rng, 0.0, 4.0).floor(); // birth order
            row[4] = 0.5 * health - 0.3 * ses + 0.6 * sample_standard_normal(&mut rng); // neonatal index
            row[5] = 0.9 * ses + 0.5 * sample_standard_normal(&mut rng); // mother age (std)

            // Binary block: demographics, risk behaviours, 8 site dummies.
            row[6] = f64::from(sample_bernoulli(&mut rng, 0.51)); // infant is male
            row[7] = f64::from(sample_bernoulli(&mut rng, stable_sigmoid(0.7 * ses))); // married
            row[8] = f64::from(sample_bernoulli(&mut rng, stable_sigmoid(-0.8 * ses))); // mother dropped out
            row[9] = f64::from(sample_bernoulli(&mut rng, stable_sigmoid(0.6 * ses - 0.5))); // attended college
            row[10] = f64::from(sample_bernoulli(&mut rng, stable_sigmoid(-0.7 * health - 0.8))); // drugs
            row[11] = f64::from(sample_bernoulli(&mut rng, stable_sigmoid(-0.5 * health - 0.4))); // alcohol
            row[12] = f64::from(sample_bernoulli(&mut rng, stable_sigmoid(-0.6 * ses - 0.2))); // smoked
            row[13] = f64::from(sample_bernoulli(&mut rng, 0.45)); // first born
            row[14] = f64::from(sample_bernoulli(&mut rng, stable_sigmoid(-0.4 * ses))); // public assistance
            row[15] = f64::from(sample_bernoulli(&mut rng, stable_sigmoid(0.3 * health - 1.0))); // twin birth
            row[16] = f64::from(sample_bernoulli(&mut rng, stable_sigmoid(-0.3 * ses - 0.6))); // teen mother

            // 8 site dummies: one-hot over sites with SES-dependent mix.
            let site = ((stable_sigmoid(0.5 * ses) * 8.0) as usize
                + (sample_uniform(&mut rng, 0.0, 3.0) as usize))
                % 8;
            for s in 0..8 {
                row[17 + s] = f64::from(s == site);
            }
        }

        // Confounded treatment: logistic on health/SES proxies, intercept
        // calibrated by bisection to hit E[#treated] = n_treated, then the
        // realised draw adjusted to the exact count (Hill's benchmark fixes
        // 139 treated units).
        let logits: Vec<f64> = (0..n)
            .map(|i| {
                let r = x.row(i);
                0.9 * r[0] + 0.6 * r[5] - 0.5 * r[8] + 0.4 * r[9] - 0.3 * r[12]
            })
            .collect();
        let mut lo = -10.0;
        let mut hi = 10.0;
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            let expected: f64 = logits.iter().map(|&z| stable_sigmoid(z + mid)).sum();
            if expected > config.n_treated as f64 {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        let intercept = 0.5 * (lo + hi);
        let mut scored: Vec<(f64, usize)> = logits
            .iter()
            .enumerate()
            .map(|(i, &z)| {
                let p = stable_sigmoid(z + intercept);
                // Random tie-breaking keeps the draw stochastic while the
                // top-k cut fixes the exact treated count.
                let u: f64 = sample_uniform(&mut rng, 1e-12, 1.0);
                (p / u, i) // Efraimidis–Spirakis-style key: P(select) ∝ p
            })
            .collect();
        scored.sort_by(|a, b| b.0.total_cmp(&a.0));
        let mut t = vec![0.0; n];
        for &(_, i) in scored.iter().take(config.n_treated) {
            t[i] = 1.0;
        }

        let x_cont = x.slice_cols(0, NUM_CONTINUOUS);
        let x_cont_std = Scaler::fit(&x_cont).transform(&x_cont);
        let x_std = Scaler::fit(&x).transform(&x);
        Ok(Self { config, x, t, x_cont_std, x_std })
    }

    /// The benchmark configuration.
    pub fn config(&self) -> &IhdpConfig {
        &self.config
    }

    /// The frozen covariate matrix.
    pub fn covariates(&self) -> &Matrix {
        &self.x
    }

    /// The frozen treatment assignment.
    pub fn treatment(&self) -> &[f64] {
        &self.t
    }

    /// One replication: simulate outcomes (fresh response-surface draw) and
    /// partition into the biased test fold plus train/validation.
    ///
    /// # Panics
    ///
    /// Panics if the replication lacks oracle outcomes (cannot happen for
    /// simulated data); use [`Self::try_replicate`] for the typed error.
    pub fn replicate(&self, rep_seed: u64) -> DataSplit {
        // lint: allow(panic) — documented (`# Panics`); simulated data always
        // carries the oracle, and `try_replicate` is the typed route.
        self.try_replicate(rep_seed).expect("simulator carries oracle outcomes")
    }

    /// Fallible variant of [`Self::replicate`]: reports a missing
    /// counterfactual oracle as [`DataError::MissingOracle`].
    pub fn try_replicate(&self, rep_seed: u64) -> Result<DataSplit, DataError> {
        let full = self.simulate_outcomes(rep_seed);
        self.try_partition(&full, rep_seed)
    }

    /// Simulates the response surface and outcomes for one replication over
    /// the full 747 units.
    pub fn simulate_outcomes(&self, rep_seed: u64) -> CausalDataset {
        let mut rng = rng_from_seed(rep_seed ^ IHDP_TAG ^ 0xabcd);
        let n = self.config.n;
        // NPCI coefficient draw: beta_j in {0, .1, .2, .3, .4} with
        // probabilities (.6, .1, .1, .1, .1) for the nonlinear surface,
        // {0..4} x (.5, .125, .125, .125, .125) for the linear one.
        let beta: Vec<f64> = (0..TOTAL_COVARIATES)
            .map(|_| match self.config.surface {
                ResponseSurface::Nonlinear => {
                    let u = sample_uniform(&mut rng, 0.0, 1.0);
                    if u < 0.6 {
                        0.0
                    } else {
                        0.1 * (((u - 0.6) / 0.1).floor() + 1.0).min(4.0)
                    }
                }
                ResponseSurface::Linear => {
                    let u = sample_uniform(&mut rng, 0.0, 1.0);
                    if u < 0.5 {
                        0.0
                    } else {
                        (((u - 0.5) / 0.125).floor() + 1.0).min(4.0)
                    }
                }
            })
            .collect();

        let dot = |row: &[f64], off: f64| -> f64 {
            row.iter().zip(&beta).map(|(&x, &b)| (x + off) * b).sum()
        };
        let (mut mu0, mut mu1): (Vec<f64>, Vec<f64>) =
            (Vec::with_capacity(n), Vec::with_capacity(n));
        match self.config.surface {
            ResponseSurface::Nonlinear => {
                for i in 0..n {
                    let row = self.x_std.row(i);
                    mu0.push(dot(row, 0.5).exp());
                    mu1.push(dot(row, 0.0));
                }
                // Calibrate omega so the average effect on the treated is 4.
                let treated: Vec<usize> = (0..n).filter(|&i| self.t[i] > 0.5).collect();
                let gap: f64 =
                    treated.iter().map(|&i| mu1[i] - mu0[i]).sum::<f64>() / treated.len() as f64;
                let omega = gap - 4.0;
                for m in &mut mu1 {
                    *m -= omega;
                }
            }
            ResponseSurface::Linear => {
                for i in 0..n {
                    let row = self.x_std.row(i);
                    let base = dot(row, 0.0);
                    mu0.push(base);
                    mu1.push(base + 4.0);
                }
            }
        }

        let y0: Vec<f64> = mu0.iter().map(|&m| m + sample_standard_normal(&mut rng)).collect();
        let y1: Vec<f64> = mu1.iter().map(|&m| m + sample_standard_normal(&mut rng)).collect();
        let yf: Vec<f64> = (0..n).map(|i| if self.t[i] > 0.5 { y1[i] } else { y0[i] }).collect();
        let ycf: Vec<f64> = (0..n).map(|i| if self.t[i] > 0.5 { y0[i] } else { y1[i] }).collect();

        CausalDataset {
            x: self.x.clone(),
            t: self.t.clone(),
            yf,
            ycf: Some(ycf),
            mu0: Some(mu0),
            mu1: Some(mu1),
            outcome: OutcomeKind::Continuous,
        }
    }

    /// Partitions a replication: biased 10% test fold over the standardised
    /// continuous covariates, remaining 70/30 train/validation.
    ///
    /// # Panics
    ///
    /// Panics if `full` lacks oracle outcomes; use [`Self::try_partition`]
    /// for the typed error.
    pub fn partition(&self, full: &CausalDataset, rep_seed: u64) -> DataSplit {
        // lint: allow(panic) — documented (`# Panics`); `try_partition` is the
        // typed route.
        self.try_partition(full, rep_seed).expect("simulator carries oracle outcomes")
    }

    /// Fallible variant of [`Self::partition`]: reports a missing
    /// counterfactual oracle as [`DataError::MissingOracle`].
    pub fn try_partition(
        &self,
        full: &CausalDataset,
        rep_seed: u64,
    ) -> Result<DataSplit, DataError> {
        let mut rng = rng_from_seed(rep_seed ^ IHDP_TAG ^ 0x5511);
        let n = full.n();
        let ite = full
            .true_ite()
            .ok_or(DataError::MissingOracle { context: "the IHDP partitioning protocol" })?;
        // D_i on the six standardised continuous covariates; effects are
        // standardised too so the tilt is scale-free for continuous outcomes.
        let e_mean = ite.iter().sum::<f64>() / n as f64;
        let e_std = (ite.iter().map(|e| (e - e_mean) * (e - e_mean)).sum::<f64>() / n as f64)
            .sqrt()
            .max(1e-9);
        let sign = if self.config.rho >= 0.0 { 1.0 } else { -1.0 };
        let log_base = self.config.rho.abs().ln();
        let log_w: Vec<f64> = (0..n)
            .map(|i| {
                let e = (ite[i] - e_mean) / e_std;
                let mut lw = 0.0;
                for j in 0..NUM_CONTINUOUS {
                    let d = (e - sign * self.x_cont_std[(i, j)]).abs();
                    lw -= 10.0 * d * log_base;
                }
                lw
            })
            .collect();
        let n_test = ((n as f64) * self.config.test_fraction).round() as usize;
        let test_idx = weighted_sample_without_replacement(&mut rng, &log_w, n_test);
        let in_test: std::collections::HashSet<usize> = test_idx.iter().copied().collect();
        let rest: Vec<usize> = (0..n).filter(|i| !in_test.contains(i)).collect();
        let (tr_local, va_local) =
            train_val_indices(&mut rng, rest.len(), self.config.val_fraction);
        let train_idx: Vec<usize> = tr_local.iter().map(|&k| rest[k]).collect();
        let val_idx: Vec<usize> = va_local.iter().map(|&k| rest[k]).collect();
        Ok(DataSplit {
            train: full.select(&train_idx),
            val: full.select(&val_idx),
            test: full.select(&test_idx),
        })
    }
}

/// Seed-domain tag separating IHDP RNG streams from other generators.
const IHDP_TAG: u64 = 0x014d_9000;

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> IhdpSimulator {
        IhdpSimulator::new(IhdpConfig::default(), 0)
    }

    #[test]
    fn malformed_specs_degrade_to_typed_errors() {
        use crate::dataset::DataError;
        let bad = |cfg: IhdpConfig| match IhdpSimulator::try_new(cfg, 0) {
            Ok(_) => panic!("expected {cfg:?} to be rejected"),
            Err(e) => e,
        };
        let e = bad(IhdpConfig { n_treated: 0, ..IhdpConfig::default() });
        assert!(matches!(e, DataError::InvalidSpec { what: "ihdp.n_treated", .. }), "{e}");
        let e = bad(IhdpConfig { n_treated: 747, ..IhdpConfig::default() });
        assert!(matches!(e, DataError::InvalidSpec { what: "ihdp.n_treated", .. }), "{e}");
        let e = bad(IhdpConfig { test_fraction: 1.5, ..IhdpConfig::default() });
        assert!(matches!(e, DataError::InvalidSpec { what: "ihdp.test_fraction", .. }), "{e}");
        let e = bad(IhdpConfig { val_fraction: f64::NAN, ..IhdpConfig::default() });
        assert!(matches!(e, DataError::InvalidSpec { what: "ihdp.val_fraction", .. }), "{e}");
        let e = bad(IhdpConfig { rho: 0.5, ..IhdpConfig::default() });
        assert!(matches!(e, DataError::InvalidSpec { what: "ihdp.rho", .. }), "{e}");
        assert!(IhdpSimulator::try_new(IhdpConfig::default(), 0).is_ok());
    }

    #[test]
    fn schema_matches_the_paper() {
        let s = sim();
        assert_eq!(s.covariates().shape(), (747, 25));
        let treated = s.treatment().iter().filter(|&&t| t > 0.5).count();
        assert_eq!(treated, 139, "exactly 139 treated units");
    }

    #[test]
    fn binary_block_is_binary_and_sites_one_hot() {
        let s = sim();
        let x = s.covariates();
        for i in 0..x.rows() {
            for j in 6..TOTAL_COVARIATES {
                let v = x[(i, j)];
                assert!(v == 0.0 || v == 1.0, "x[{i}][{j}] = {v}");
            }
            let site_sum: f64 = (17..25).map(|j| x[(i, j)]).sum();
            assert_eq!(site_sum, 1.0, "site dummies must be one-hot");
        }
    }

    #[test]
    fn treatment_is_confounded_with_covariates() {
        let s = sim();
        let x = s.covariates();
        let t = s.treatment();
        let treated_mean: f64 =
            (0..x.rows()).filter(|&i| t[i] > 0.5).map(|i| x[(i, 0)]).sum::<f64>() / 139.0;
        let control_mean: f64 =
            (0..x.rows()).filter(|&i| t[i] <= 0.5).map(|i| x[(i, 0)]).sum::<f64>() / 608.0;
        assert!(
            (treated_mean - control_mean).abs() > 0.2,
            "selection bias on birth weight: {treated_mean} vs {control_mean}"
        );
    }

    #[test]
    fn nonlinear_surface_att_is_calibrated_to_four() {
        let s = sim();
        let d = s.simulate_outcomes(7);
        let treated: Vec<usize> = d.treated_indices();
        let mu0 = d.mu0.as_ref().unwrap();
        let mu1 = d.mu1.as_ref().unwrap();
        let att: f64 = treated.iter().map(|&i| mu1[i] - mu0[i]).sum::<f64>() / treated.len() as f64;
        assert!((att - 4.0).abs() < 1e-9, "ATT should be calibrated to 4, got {att}");
    }

    #[test]
    fn linear_surface_has_constant_effect() {
        let s = IhdpSimulator::new(
            IhdpConfig { surface: ResponseSurface::Linear, ..Default::default() },
            1,
        );
        let d = s.simulate_outcomes(3);
        let ite = d.true_ite().unwrap();
        assert!(ite.iter().all(|&e| (e - 4.0).abs() < 1e-9));
    }

    #[test]
    fn replications_differ_in_outcomes_not_covariates() {
        let s = sim();
        let a = s.simulate_outcomes(1);
        let b = s.simulate_outcomes(2);
        assert!(a.x.approx_eq(&b.x, 0.0));
        assert_eq!(a.t, b.t);
        assert_ne!(a.yf, b.yf);
    }

    #[test]
    fn partition_sizes_follow_the_protocol() {
        let s = sim();
        let split = s.replicate(11);
        assert_eq!(split.test.n(), 75); // 10% of 747
        assert_eq!(split.train.n() + split.val.n(), 672);
        split.train.validate().unwrap();
        split.test.validate().unwrap();
    }

    #[test]
    fn outcomes_are_continuous_with_unit_noise() {
        let s = sim();
        let d = s.simulate_outcomes(5);
        assert_eq!(d.outcome, OutcomeKind::Continuous);
        let mu0 = d.mu0.as_ref().unwrap();
        // Residuals yf - mu(t) should have roughly unit variance.
        let mut resid = Vec::new();
        for ((&ti, &yi), &m0) in d.t.iter().zip(&d.yf).zip(mu0.iter()) {
            if ti <= 0.5 {
                resid.push(yi - m0);
            }
        }
        let m = resid.iter().sum::<f64>() / resid.len() as f64;
        let v = resid.iter().map(|r| (r - m) * (r - m)).sum::<f64>() / resid.len() as f64;
        assert!((v - 1.0).abs() < 0.2, "noise variance {v}");
    }
}
