//! The causal dataset abstraction shared by every generator, model and
//! experiment in the workspace.

use std::fmt;

use sbrl_tensor::Matrix;

/// Outcome type of a dataset, selecting the prediction loss (Eq. 12).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OutcomeKind {
    /// Continuous outcome — MSE loss (IHDP).
    Continuous,
    /// Binary outcome — cross-entropy loss (synthetic, Twins).
    Binary,
}

/// Typed validation failures surfaced at the library boundary.
#[derive(Clone, Debug, PartialEq)]
pub enum DataError {
    /// The treated or control arm is empty, violating overlap
    /// (Assumption 3.3 of the paper).
    EmptyTreatmentArm {
        /// Number of treated units found.
        treated: usize,
        /// Number of control units found.
        control: usize,
    },
    /// A non-finite value (NaN/inf) was found in the named field.
    NonFinite {
        /// Which field failed the check.
        field: &'static str,
    },
    /// Field lengths are inconsistent with the covariate matrix.
    LengthMismatch {
        /// Which field failed the check.
        field: &'static str,
        /// Its length.
        got: usize,
        /// The expected sample count.
        expected: usize,
    },
    /// A treatment indicator was neither 0 nor 1.
    InvalidTreatment {
        /// Sample index of the offending value.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// The dataset holds no samples.
    Empty,
    /// A dataset name was not found in the registry.
    UnknownDataset {
        /// The rejected name.
        name: String,
        /// Comma-separated list of registered names.
        known: String,
    },
    /// A simulator/dataset specification is structurally invalid (e.g. a
    /// treated count outside `1..n`): the spec degrades to a typed error
    /// instead of panicking a sweep.
    InvalidSpec {
        /// Which spec field is at fault.
        what: &'static str,
        /// Human-readable explanation.
        message: String,
    },
    /// An operation needed the counterfactual oracle (`mu0`/`mu1` or
    /// `ycf`), but the dataset does not carry it.
    MissingOracle {
        /// The operation that needed the oracle.
        context: &'static str,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::EmptyTreatmentArm { treated, control } => write!(
                f,
                "overlap violated: {treated} treated / {control} control units (both arms must be non-empty)"
            ),
            DataError::NonFinite { field } => write!(f, "non-finite value in `{field}`"),
            DataError::LengthMismatch { field, got, expected } => {
                write!(f, "`{field}` has length {got}, expected {expected}")
            }
            DataError::InvalidTreatment { index, value } => {
                write!(f, "treatment[{index}] = {value} is not 0/1")
            }
            DataError::Empty => write!(f, "dataset holds no samples"),
            DataError::UnknownDataset { name, known } => {
                write!(f, "unknown dataset '{name}' (registered datasets: {known})")
            }
            DataError::InvalidSpec { what, message } => {
                write!(f, "invalid dataset spec ({what}): {message}")
            }
            DataError::MissingOracle { context } => {
                write!(f, "{context} needs the counterfactual oracle, which this dataset lacks")
            }
        }
    }
}

impl std::error::Error for DataError {}

/// An observational dataset with (optionally) known counterfactuals.
///
/// Synthetic and semi-synthetic benchmarks expose both potential outcomes so
/// that PEHE can be evaluated; the *model* only ever sees `x`, `t` and the
/// factual outcome `yf`.
#[derive(Clone, Debug)]
pub struct CausalDataset {
    /// Covariates, one row per unit.
    pub x: Matrix,
    /// Treatment indicators in `{0.0, 1.0}`.
    pub t: Vec<f64>,
    /// Factual (observed) outcomes aligned with `t`.
    pub yf: Vec<f64>,
    /// Counterfactual outcomes (oracle; evaluation only).
    pub ycf: Option<Vec<f64>>,
    /// Noiseless expected potential outcome under control (oracle).
    pub mu0: Option<Vec<f64>>,
    /// Noiseless expected potential outcome under treatment (oracle).
    pub mu1: Option<Vec<f64>>,
    /// Outcome type, selecting the loss function.
    pub outcome: OutcomeKind,
}

impl CausalDataset {
    /// Number of units.
    pub fn n(&self) -> usize {
        self.x.rows()
    }

    /// Covariate dimension.
    pub fn dim(&self) -> usize {
        self.x.cols()
    }

    /// Indices of treated units (`t = 1`).
    pub fn treated_indices(&self) -> Vec<usize> {
        self.t.iter().enumerate().filter_map(|(i, &t)| (t > 0.5).then_some(i)).collect()
    }

    /// Indices of control units (`t = 0`).
    pub fn control_indices(&self) -> Vec<usize> {
        self.t.iter().enumerate().filter_map(|(i, &t)| (t <= 0.5).then_some(i)).collect()
    }

    /// Fraction of treated units.
    pub fn treated_fraction(&self) -> f64 {
        if self.t.is_empty() {
            0.0
        } else {
            self.t.iter().sum::<f64>() / self.t.len() as f64
        }
    }

    /// Ground-truth individual treatment effects `y1 - y0` (Definition 3.1),
    /// preferring noiseless `mu` when available.
    ///
    /// Returns `None` when the dataset carries no counterfactual oracle.
    pub fn true_ite(&self) -> Option<Vec<f64>> {
        if let (Some(mu0), Some(mu1)) = (&self.mu0, &self.mu1) {
            return Some(mu1.iter().zip(mu0).map(|(a, b)| a - b).collect());
        }
        let ycf = self.ycf.as_ref()?;
        Some(
            self.t
                .iter()
                .zip(self.yf.iter().zip(ycf))
                .map(|(&t, (&yf, &ycf))| if t > 0.5 { yf - ycf } else { ycf - yf })
                .collect(),
        )
    }

    /// Ground-truth average treatment effect (Definition 3.2).
    pub fn true_ate(&self) -> Option<f64> {
        let ite = self.true_ite()?;
        if ite.is_empty() {
            return None;
        }
        Some(ite.iter().sum::<f64>() / ite.len() as f64)
    }

    /// Counterfactual outcome vector aligned as `(y0, y1)` pairs, if known.
    pub fn potential_outcomes(&self) -> Option<(Vec<f64>, Vec<f64>)> {
        let ycf = self.ycf.as_ref()?;
        let mut y0 = Vec::with_capacity(self.n());
        let mut y1 = Vec::with_capacity(self.n());
        for (i, &t) in self.t.iter().enumerate() {
            if t > 0.5 {
                y1.push(self.yf[i]);
                y0.push(ycf[i]);
            } else {
                y0.push(self.yf[i]);
                y1.push(ycf[i]);
            }
        }
        Some((y0, y1))
    }

    /// Extracts the subset of units at `indices` (preserving order).
    pub fn select(&self, indices: &[usize]) -> CausalDataset {
        let pick = |v: &Vec<f64>| indices.iter().map(|&i| v[i]).collect::<Vec<f64>>();
        CausalDataset {
            x: self.x.select_rows(indices),
            t: pick(&self.t),
            yf: pick(&self.yf),
            ycf: self.ycf.as_ref().map(pick),
            mu0: self.mu0.as_ref().map(pick),
            mu1: self.mu1.as_ref().map(pick),
            outcome: self.outcome,
        }
    }

    /// Structural validation: shapes, 0/1 treatments, finiteness and overlap.
    pub fn validate(&self) -> Result<(), DataError> {
        let n = self.n();
        if n == 0 {
            return Err(DataError::Empty);
        }
        for (field, len) in [("t", self.t.len()), ("yf", self.yf.len())] {
            if len != n {
                return Err(DataError::LengthMismatch { field, got: len, expected: n });
            }
        }
        for (field, opt) in [("ycf", &self.ycf), ("mu0", &self.mu0), ("mu1", &self.mu1)] {
            if let Some(v) = opt {
                if v.len() != n {
                    return Err(DataError::LengthMismatch { field, got: v.len(), expected: n });
                }
                if !v.iter().all(|x| x.is_finite()) {
                    return Err(DataError::NonFinite { field });
                }
            }
        }
        if !self.x.all_finite() {
            return Err(DataError::NonFinite { field: "x" });
        }
        if !self.yf.iter().all(|x| x.is_finite()) {
            return Err(DataError::NonFinite { field: "yf" });
        }
        for (i, &t) in self.t.iter().enumerate() {
            if t != 0.0 && t != 1.0 {
                return Err(DataError::InvalidTreatment { index: i, value: t });
            }
        }
        let treated = self.treated_indices().len();
        let control = n - treated;
        if treated == 0 || control == 0 {
            return Err(DataError::EmptyTreatmentArm { treated, control });
        }
        Ok(())
    }
}

/// Per-column standardisation fitted on one dataset and applied to others
/// (fit on train, apply to val/test — never the other way around).
#[derive(Clone, Debug)]
pub struct Scaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Scaler {
    /// Fits column means and standard deviations (floored at 1e-8).
    pub fn fit(x: &Matrix) -> Self {
        let means = x.mean_axis0().into_vec();
        let stds = x.std_axis0().map(|s| s.max(1e-8)).into_vec();
        Self { means, stds }
    }

    /// Standardises a matrix with the fitted statistics.
    ///
    /// # Panics
    /// Panics if the column count differs from the fitted one.
    #[track_caller]
    pub fn transform(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.means.len(), "Scaler: column count mismatch");
        Matrix::from_fn(x.rows(), x.cols(), |i, j| (x[(i, j)] - self.means[j]) / self.stds[j])
    }

    /// Rebuilds a scaler from previously fitted statistics (model
    /// deserialization). Returns `None` when the statistics cannot have come
    /// from [`Scaler::fit`]: mismatched or empty columns, non-finite values,
    /// or non-positive standard deviations.
    pub fn from_stats(means: Vec<f64>, stds: Vec<f64>) -> Option<Self> {
        if means.is_empty() || means.len() != stds.len() {
            return None;
        }
        if !means.iter().all(|m| m.is_finite()) || !stds.iter().all(|s| s.is_finite() && *s > 0.0) {
            return None;
        }
        Some(Self { means, stds })
    }

    /// Fitted means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Fitted standard deviations.
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbrl_tensor::rng::{randn, rng_from_seed};

    fn toy() -> CausalDataset {
        CausalDataset {
            x: Matrix::from_vec(4, 2, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]),
            t: vec![1.0, 0.0, 1.0, 0.0],
            yf: vec![2.0, 1.0, 3.0, 0.0],
            ycf: Some(vec![1.0, 2.0, 1.0, 1.0]),
            mu0: None,
            mu1: None,
            outcome: OutcomeKind::Continuous,
        }
    }

    #[test]
    fn scaler_from_stats_validates_and_round_trips() {
        let d = toy();
        let fitted = Scaler::fit(&d.x);
        let rebuilt = Scaler::from_stats(fitted.means().to_vec(), fitted.stds().to_vec())
            .expect("fitted stats are valid");
        assert_eq!(fitted.transform(&d.x).as_slice(), rebuilt.transform(&d.x).as_slice());
        // Invalid statistics are rejected.
        assert!(Scaler::from_stats(vec![], vec![]).is_none());
        assert!(Scaler::from_stats(vec![0.0], vec![1.0, 1.0]).is_none());
        assert!(Scaler::from_stats(vec![f64::NAN], vec![1.0]).is_none());
        assert!(Scaler::from_stats(vec![0.0], vec![0.0]).is_none());
        assert!(Scaler::from_stats(vec![0.0], vec![-1.0]).is_none());
    }

    #[test]
    fn indices_and_fraction() {
        let d = toy();
        assert_eq!(d.treated_indices(), vec![0, 2]);
        assert_eq!(d.control_indices(), vec![1, 3]);
        assert!((d.treated_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn true_ite_from_counterfactuals() {
        let d = toy();
        // treated: yf - ycf; control: ycf - yf
        assert_eq!(d.true_ite().unwrap(), vec![1.0, 1.0, 2.0, 1.0]);
        assert!((d.true_ate().unwrap() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn true_ite_prefers_mu() {
        let mut d = toy();
        d.mu0 = Some(vec![0.0; 4]);
        d.mu1 = Some(vec![5.0; 4]);
        assert_eq!(d.true_ite().unwrap(), vec![5.0; 4]);
    }

    #[test]
    fn potential_outcomes_align() {
        let d = toy();
        let (y0, y1) = d.potential_outcomes().unwrap();
        assert_eq!(y0, vec![1.0, 1.0, 1.0, 0.0]);
        assert_eq!(y1, vec![2.0, 2.0, 3.0, 1.0]);
    }

    #[test]
    fn select_subsets_all_fields() {
        let d = toy();
        let s = d.select(&[2, 0]);
        assert_eq!(s.n(), 2);
        assert_eq!(s.t, vec![1.0, 1.0]);
        assert_eq!(s.yf, vec![3.0, 2.0]);
        assert_eq!(s.ycf.as_ref().unwrap(), &vec![1.0, 1.0]);
        assert_eq!(s.x.row(0), d.x.row(2));
    }

    #[test]
    fn validate_accepts_well_formed_data() {
        assert!(toy().validate().is_ok());
    }

    #[test]
    fn validate_rejects_empty_arm() {
        let mut d = toy();
        d.t = vec![1.0, 1.0, 1.0, 1.0];
        assert!(matches!(d.validate(), Err(DataError::EmptyTreatmentArm { .. })));
    }

    #[test]
    fn validate_rejects_nan_and_bad_treatment() {
        let mut d = toy();
        d.x[(0, 0)] = f64::NAN;
        assert!(matches!(d.validate(), Err(DataError::NonFinite { field: "x" })));

        let mut d2 = toy();
        d2.t[1] = 0.5;
        assert!(matches!(d2.validate(), Err(DataError::InvalidTreatment { index: 1, .. })));

        let mut d3 = toy();
        d3.yf.pop();
        assert!(matches!(d3.validate(), Err(DataError::LengthMismatch { field: "yf", .. })));
    }

    #[test]
    fn scaler_standardises_train_and_transfers_to_test() {
        let mut rng = rng_from_seed(0);
        let train = randn(&mut rng, 200, 3).scale(5.0).add_scalar(2.0);
        let scaler = Scaler::fit(&train);
        let z = scaler.transform(&train);
        let m = z.mean_axis0();
        let s = z.std_axis0();
        for j in 0..3 {
            assert!(m.as_slice()[j].abs() < 1e-9);
            assert!((s.as_slice()[j] - 1.0).abs() < 1e-9);
        }
        // Test data transformed with train statistics, not its own.
        let test = randn(&mut rng, 50, 3).scale(5.0).add_scalar(4.0);
        let zt = scaler.transform(&test);
        assert!(zt.mean_axis0().as_slice()[0] > 0.1, "shifted test should not be centred");
    }
}
