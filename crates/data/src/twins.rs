//! Twins-like benchmark (Sec. V-E1 of the paper).
//!
//! The paper uses the NBER linked birth / infant-death records of same-sex
//! twins born 1989–1991 weighing under 2000 g (5271 records after filtering).
//! Those files are not available offline, so this module ships a simulator
//! that reproduces the benchmark's *published schema and augmentation
//! protocol* exactly (see DESIGN.md §5 for the substitution argument):
//!
//! * 28 "real" covariates `X1..X28` about parents / pregnancy / birth,
//!   generated from shared latent health & socioeconomic factors with mixed
//!   types (continuous, ordinal, binary) — including blocks of strongly
//!   redundant variables, matching the paper's observation that Twins has
//!   "an abundance of similar or identical variables" and hence a low
//!   intrinsic OOD level;
//! * 10 synthetic instruments `X29..X38 ~ N(0,1)` and 5 unstable variables
//!   `X39..X43 ~ N(0,1)` appended verbatim per the paper;
//! * treatment `t = 1` means "the heavier twin"; both potential mortality
//!   outcomes are observed in the twin pair, with the heavier twin enjoying
//!   a small survival advantage;
//! * observational treatment assignment is re-simulated as
//!   `t | x ~ B(sigmoid(w' X_IC + eta))`, `w ~ U(-0.1, 0.1)`,
//!   `eta ~ N(0, 0.1)`;
//! * the OOD test fold (20%) is drawn with bias-rate `rho = -2.5` sampling
//!   on `X_V`; the remainder splits 70/30 into train/validation; partitions
//!   are repeated for 10 rounds.

use sbrl_tensor::rng::{rng_from_seed, sample_bernoulli, sample_standard_normal, sample_uniform};
use sbrl_tensor::{stable_sigmoid, Matrix};

use crate::dataset::{CausalDataset, DataError, OutcomeKind};
use crate::sampling::{selection_log_weight, weighted_sample_without_replacement};
use crate::splits::{train_val_indices, DataSplit};

/// Configuration of the Twins-like benchmark.
#[derive(Clone, Copy, Debug)]
pub struct TwinsConfig {
    /// Number of twin-pair records (paper: 5271).
    pub n: usize,
    /// Bias rate of the OOD test sampling (paper: -2.5).
    pub rho: f64,
    /// Fraction of records sampled (biasedly) into the test fold (paper: 20%).
    pub test_fraction: f64,
    /// Fraction of the remainder assigned to validation (paper: 30%).
    pub val_fraction: f64,
}

impl Default for TwinsConfig {
    fn default() -> Self {
        Self { n: 5271, rho: -2.5, test_fraction: 0.2, val_fraction: 0.3 }
    }
}

/// Number of "real" covariates (`X1..X28`).
pub const NUM_REAL_COVARIATES: usize = 28;
/// Number of synthetic instruments (`X29..X38`).
pub const NUM_INSTRUMENTS: usize = 10;
/// Number of synthetic unstable variables (`X39..X43`).
pub const NUM_UNSTABLE: usize = 5;
/// Total covariate dimension (43).
pub const TOTAL_COVARIATES: usize = NUM_REAL_COVARIATES + NUM_INSTRUMENTS + NUM_UNSTABLE;

/// The Twins-like data generator; covariates, potential outcomes and the
/// observational treatment assignment are frozen at construction, partitions
/// vary by round.
pub struct TwinsSimulator {
    config: TwinsConfig,
    full: CausalDataset,
}

impl TwinsSimulator {
    /// Generates the full record table from `seed`.
    ///
    /// # Panics
    /// On a structurally invalid [`TwinsConfig`]; sweeps that must degrade
    /// gracefully use [`TwinsSimulator::try_new`].
    pub fn new(config: TwinsConfig, seed: u64) -> Self {
        // lint: allow(panic) — documented (`# Panics`); `try_new` is the
        // typed route.
        Self::try_new(config, seed).unwrap_or_else(|e| panic!("invalid TwinsConfig: {e}"))
    }

    /// [`TwinsSimulator::new`] with typed spec validation: a malformed
    /// config (zero cohort, out-of-range fractions, a bias rate the
    /// selection mechanism cannot represent) is a [`DataError::InvalidSpec`]
    /// instead of a panic.
    pub fn try_new(config: TwinsConfig, seed: u64) -> Result<Self, DataError> {
        if config.n < 2 {
            return Err(DataError::InvalidSpec {
                what: "twins.n",
                message: format!("needs at least 2 records, got {}", config.n),
            });
        }
        for (what, v) in [
            ("twins.test_fraction", config.test_fraction),
            ("twins.val_fraction", config.val_fraction),
        ] {
            if !v.is_finite() || !(0.0..1.0).contains(&v) {
                return Err(DataError::InvalidSpec {
                    what,
                    message: format!("must be a finite fraction in [0, 1), got {v}"),
                });
            }
        }
        if !config.rho.is_finite() || config.rho.abs() <= 1.0 {
            return Err(DataError::InvalidSpec {
                what: "twins.rho",
                message: format!("bias rate needs |rho| > 1 and finite, got {}", config.rho),
            });
        }
        let mut rng = rng_from_seed(seed ^ 0x7717_5000);
        let n = config.n;
        let mut x = Matrix::zeros(n, TOTAL_COVARIATES);
        let mut mu0 = Vec::with_capacity(n);
        let mut mu1 = Vec::with_capacity(n);
        let mut y0 = Vec::with_capacity(n);
        let mut y1 = Vec::with_capacity(n);

        for i in 0..n {
            // Latent factors: maternal health, socioeconomic status,
            // pregnancy risk.
            let health = sample_standard_normal(&mut rng);
            let ses = sample_standard_normal(&mut rng);
            let risk = 0.6 * sample_standard_normal(&mut rng) - 0.4 * health;

            let row = x.row_mut(i);
            // --- parental block (X1..X10) ---
            row[0] = 26.0 + 5.5 * ses + 1.5 * sample_standard_normal(&mut rng); // mother age
            row[1] = (row[0] - 2.0 + sample_standard_normal(&mut rng)).max(15.0); // father age proxy
            let edu = (2.0 + ses + 0.3 * sample_standard_normal(&mut rng)).clamp(0.0, 4.0);
            row[2] = edu.round(); // mother education (ordinal 0..4)
            row[3] = (edu + 0.4 * sample_standard_normal(&mut rng)).clamp(0.0, 4.0).round(); // father education (redundant with X3)
            row[4] = f64::from(sample_bernoulli(&mut rng, stable_sigmoid(0.8 * ses))); // married
            let race = sample_uniform(&mut rng, 0.0, 1.0);
            row[5] = f64::from(race < 0.55); // race group A
            row[6] = f64::from((0.55..0.8).contains(&race)); // race group B
            row[7] = f64::from(race >= 0.8); // race group C
            row[8] = f64::from(sample_bernoulli(&mut rng, stable_sigmoid(-0.9 * ses))); // public insurance
            row[9] =
                (1.0 + (-ses).max(0.0) + 0.5 * sample_standard_normal(&mut rng)).max(0.0).round(); // parity

            // --- pregnancy block (X11..X20), deliberately redundant ---
            let visits = (10.0 + 2.5 * ses + health + sample_standard_normal(&mut rng)).max(0.0);
            row[10] = visits.round(); // prenatal visits
            row[11] = f64::from(visits < 6.0); // few-visits flag (function of X11)
            row[12] =
                f64::from(sample_bernoulli(&mut rng, stable_sigmoid(-1.2 * health - 0.5 * ses))); // smoked
            row[13] = f64::from(sample_bernoulli(&mut rng, stable_sigmoid(-1.5 * health - 1.0))); // alcohol
            row[14] = f64::from(sample_bernoulli(&mut rng, stable_sigmoid(0.9 * risk - 1.2))); // diabetes
            row[15] = f64::from(sample_bernoulli(&mut rng, stable_sigmoid(1.1 * risk - 1.0))); // hypertension
            row[16] = f64::from(sample_bernoulli(&mut rng, stable_sigmoid(1.0 * risk - 1.5))); // eclampsia
            row[17] = (20.0 + 6.0 * health - 3.0 * risk + 2.0 * sample_standard_normal(&mut rng))
                .max(0.0); // weight gain
            row[18] = f64::from(row[17] < 15.0); // low weight gain flag
            row[19] = f64::from(sample_bernoulli(&mut rng, stable_sigmoid(0.8 * risk - 0.8))); // previous preterm

            // --- birth block (X21..X28) ---
            let gestation =
                34.0 + 2.2 * health - 1.8 * risk + 1.2 * sample_standard_normal(&mut rng);
            row[20] = gestation.clamp(22.0, 40.0); // gestation weeks
            row[21] = f64::from(gestation < 32.0); // very preterm flag
            let w_light = (1350.0
                + 120.0 * (gestation - 34.0)
                + 90.0 * health
                + 60.0 * sample_standard_normal(&mut rng))
            .clamp(400.0, 1990.0);
            row[22] = w_light / 1000.0; // lighter-twin weight (kg, < 2)
            let delta =
                (110.0 + 45.0 * sample_standard_normal(&mut rng).abs()).min(1990.0 - w_light);
            row[23] = (w_light + delta.max(10.0)).min(1995.0) / 1000.0; // heavier-twin weight
            row[24] = f64::from(sample_bernoulli(&mut rng, 0.49)); // twins are female
            row[25] = f64::from(sample_bernoulli(&mut rng, stable_sigmoid(risk - 1.0))); // c-section
            row[26] = f64::from(sample_bernoulli(&mut rng, stable_sigmoid(-health))); // NICU admission proxy
            row[27] = (5.0 + 2.5 * health - 1.5 * risk + sample_standard_normal(&mut rng))
                .clamp(0.0, 10.0); // APGAR-like score

            // --- instruments X29..X38 and unstable X39..X43 ---
            for x in &mut row[NUM_REAL_COVARIATES..TOTAL_COVARIATES] {
                *x = sample_standard_normal(&mut rng);
            }

            // Potential mortality outcomes. The heavier twin (t = 1) has a
            // survival advantage growing with the weight gap.
            let frailty = -1.6 - 1.0 * health + 0.9 * risk
                - 0.09 * (gestation - 34.0)
                - 0.9 * (w_light / 1000.0 - 1.4);
            let p0 = stable_sigmoid(frailty);
            let p1 = stable_sigmoid(frailty - 0.25 - 0.2 * (delta / 500.0));
            mu0.push(p0);
            mu1.push(p1);
            let shared = sample_standard_normal(&mut rng);
            // Correlated Bernoulli draws: twins share environment.
            let u0 = stable_sigmoid(1.5 * shared + sample_standard_normal(&mut rng));
            let u1 = stable_sigmoid(1.5 * shared + sample_standard_normal(&mut rng));
            y0.push(f64::from(u0 < p0));
            y1.push(f64::from(u1 < p1));
        }

        // Observational treatment assignment on X_IC = real covariates +
        // instruments (paper: w ~ U(-0.1, 0.1), eta ~ N(0, 0.1)).
        let n_ic = NUM_REAL_COVARIATES + NUM_INSTRUMENTS;
        let w: Vec<f64> = (0..n_ic).map(|_| sample_uniform(&mut rng, -0.1, 0.1)).collect();
        let mut t = Vec::with_capacity(n);
        for i in 0..n {
            let row = x.row(i);
            let eta = 0.1 * sample_standard_normal(&mut rng);
            let z: f64 = row[..n_ic].iter().zip(&w).map(|(&x, &w)| w * x).sum::<f64>() + eta;
            t.push(f64::from(sample_bernoulli(&mut rng, stable_sigmoid(z))));
        }

        let yf: Vec<f64> = (0..n).map(|i| if t[i] > 0.5 { y1[i] } else { y0[i] }).collect();
        let ycf: Vec<f64> = (0..n).map(|i| if t[i] > 0.5 { y0[i] } else { y1[i] }).collect();

        let full = CausalDataset {
            x,
            t,
            yf,
            ycf: Some(ycf),
            mu0: Some(mu0),
            mu1: Some(mu1),
            outcome: OutcomeKind::Binary,
        };
        Ok(Self { config, full })
    }

    /// The full record table (all 43 covariates, both potential outcomes).
    pub fn full(&self) -> &CausalDataset {
        &self.full
    }

    /// The benchmark configuration.
    pub fn config(&self) -> &TwinsConfig {
        &self.config
    }

    /// Column indices of the unstable variables `X_V`.
    pub fn unstable_columns() -> std::ops::Range<usize> {
        (NUM_REAL_COVARIATES + NUM_INSTRUMENTS)..TOTAL_COVARIATES
    }

    /// One partitioning round: biased 20% test fold (`rho` tilt on `X_V`),
    /// remaining 70/30 train/validation.
    ///
    /// # Panics
    /// Never for a simulator built by [`TwinsSimulator::new`] /
    /// [`TwinsSimulator::try_new`] (its table always carries the oracle);
    /// kept infallible for the many test/bench call sites. Fallible callers
    /// use [`TwinsSimulator::try_partition`].
    pub fn partition(&self, round: u64) -> DataSplit {
        // lint: allow(panic) — documented (`# Panics`): infallible for any
        // simulator-built table; `try_partition` is the typed route.
        self.try_partition(round).expect("simulator carries oracle outcomes")
    }

    /// [`TwinsSimulator::partition`] with typed failure when the record
    /// table lacks the counterfactual oracle the biased sampler needs.
    pub fn try_partition(&self, round: u64) -> Result<DataSplit, DataError> {
        let mut rng = rng_from_seed(round ^ 0x7717_5041);
        let n = self.full.n();
        let ite = self
            .full
            .true_ite()
            .ok_or(DataError::MissingOracle { context: "the twins partitioning protocol" })?;
        let v_cols: Vec<usize> = Self::unstable_columns().collect();
        let log_w: Vec<f64> = (0..n)
            .map(|i| {
                let v: Vec<f64> = v_cols.iter().map(|&j| self.full.x[(i, j)]).collect();
                selection_log_weight(self.config.rho, ite[i], &v)
            })
            .collect();
        let n_test = ((n as f64) * self.config.test_fraction).round() as usize;
        let test_idx = weighted_sample_without_replacement(&mut rng, &log_w, n_test);
        let in_test: std::collections::HashSet<usize> = test_idx.iter().copied().collect();
        let rest: Vec<usize> = (0..n).filter(|i| !in_test.contains(i)).collect();

        let (tr_local, va_local) =
            train_val_indices(&mut rng, rest.len(), self.config.val_fraction);
        let train_idx: Vec<usize> = tr_local.iter().map(|&k| rest[k]).collect();
        let val_idx: Vec<usize> = va_local.iter().map(|&k| rest[k]).collect();

        Ok(DataSplit {
            train: self.full.select(&train_idx),
            val: self.full.select(&val_idx),
            test: self.full.select(&test_idx),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TwinsSimulator {
        TwinsSimulator::new(TwinsConfig { n: 800, ..Default::default() }, 1)
    }

    #[test]
    fn schema_matches_the_paper() {
        let sim = small();
        let d = sim.full();
        assert_eq!(d.dim(), 43);
        assert_eq!(d.n(), 800);
        d.validate().unwrap();
        assert_eq!(d.outcome, OutcomeKind::Binary);
        assert_eq!(TwinsSimulator::unstable_columns(), 38..43);
    }

    #[test]
    fn default_config_matches_paper_scale() {
        let c = TwinsConfig::default();
        assert_eq!(c.n, 5271);
        assert_eq!(c.rho, -2.5);
        assert_eq!(c.test_fraction, 0.2);
    }

    #[test]
    fn weights_stay_under_two_kilograms() {
        let sim = small();
        let d = sim.full();
        for i in 0..d.n() {
            assert!(d.x[(i, 22)] < 2.0, "lighter twin weight");
            assert!(d.x[(i, 23)] < 2.0, "heavier twin weight");
            assert!(d.x[(i, 23)] > d.x[(i, 22)], "heavier twin must be heavier");
        }
    }

    #[test]
    fn heavier_twin_has_survival_advantage() {
        let sim = TwinsSimulator::new(TwinsConfig { n: 4000, ..Default::default() }, 3);
        let d = sim.full();
        let m0: f64 = d.mu0.as_ref().unwrap().iter().sum::<f64>() / d.n() as f64;
        let m1: f64 = d.mu1.as_ref().unwrap().iter().sum::<f64>() / d.n() as f64;
        assert!(m1 < m0, "heavier twin mortality {m1} should undercut lighter {m0}");
        assert!(m0 > 0.05 && m0 < 0.4, "plausible mortality base rate, got {m0}");
    }

    #[test]
    fn partition_sizes_follow_the_protocol() {
        let sim = small();
        let split = sim.partition(0);
        assert_eq!(split.test.n(), 160); // 20% of 800
        let rest = 800 - 160;
        assert_eq!(split.val.n(), (rest as f64 * 0.3).round() as usize);
        assert_eq!(split.train.n() + split.val.n() + split.test.n(), 800);
        split.train.validate().unwrap();
        split.val.validate().unwrap();
        split.test.validate().unwrap();
    }

    #[test]
    fn rounds_differ_but_are_reproducible() {
        let sim = small();
        let a = sim.partition(0);
        let b = sim.partition(0);
        let c = sim.partition(1);
        assert_eq!(a.test.yf, b.test.yf);
        assert!(a.test.x.approx_eq(&b.test.x, 0.0));
        assert_ne!(a.test.yf, c.test.yf);
    }

    #[test]
    fn malformed_specs_degrade_to_typed_errors() {
        let bad = TwinsConfig { n: 1, ..Default::default() };
        assert!(matches!(
            TwinsSimulator::try_new(bad, 0),
            Err(DataError::InvalidSpec { what: "twins.n", .. })
        ));
        let bad = TwinsConfig { test_fraction: 1.2, ..Default::default() };
        assert!(TwinsSimulator::try_new(bad, 0).is_err());
        let bad = TwinsConfig { val_fraction: f64::NAN, ..Default::default() };
        assert!(TwinsSimulator::try_new(bad, 0).is_err());
        let bad = TwinsConfig { rho: 0.5, ..Default::default() };
        assert!(TwinsSimulator::try_new(bad, 0).is_err());
        // The happy path is unchanged.
        assert!(TwinsSimulator::try_new(TwinsConfig { n: 100, ..Default::default() }, 0).is_ok());
    }

    #[test]
    fn test_fold_is_distribution_shifted() {
        // Under rho = -2.5 the test fold tilts the unstable features against
        // the treatment effect, so the X_V marginal differs from train.
        let sim = TwinsSimulator::new(TwinsConfig { n: 4000, ..Default::default() }, 5);
        let split = sim.partition(0);
        let col = TwinsSimulator::unstable_columns().start;
        let mean_of =
            |d: &CausalDataset| (0..d.n()).map(|i| d.x[(i, col)]).sum::<f64>() / d.n() as f64;
        let shift = (mean_of(&split.test) - mean_of(&split.train)).abs();
        assert!(shift > 0.02, "test fold should shift X_V, got {shift}");
    }
}
