//! Name-addressable dataset registry.
//!
//! Maps benchmark names — `"syn_8_8_8_2"`, `"syn_16_16_16_2"`, `"twins"`,
//! `"ihdp"`, plus caller-registered entries — to generator closures
//! producing train/val/test [`DataSplit`]s, so runners, examples and future
//! server endpoints select workloads by string instead of compiled-in match
//! arms.
//!
//! ```
//! use sbrl_data::{DatasetOptions, DatasetRegistry};
//!
//! let registry = DatasetRegistry::builtin();
//! let opts = DatasetOptions { n_train: 200, n_val: 80, n_test: 100, ..Default::default() };
//! let split = registry.generate("syn_8_8_8_2", &opts).unwrap();
//! assert_eq!(split.train.n(), 200);
//! assert!(registry.generate("mnist", &opts).is_err());
//! ```

use crate::dataset::DataError;
use crate::ihdp::{IhdpConfig, IhdpSimulator};
use crate::splits::DataSplit;
use crate::synthetic::{SyntheticConfig, SyntheticProcess, TRAIN_BIAS_RATE};
use crate::twins::{TwinsConfig, TwinsSimulator};

/// Options threaded to a registry generator. Sources interpret what applies
/// to them: the synthetic processes honour every field exactly, while the
/// Twins and IHDP simulators size their cohort to the requested *total*
/// (`n_train + n_val + n_test`, floored at 100 records for simulator
/// stability) and seed, then split it with the paper's own partitioning
/// protocol — so their individual fold sizes are protocol-driven, not
/// exact.
#[derive(Clone, Copy, Debug)]
pub struct DatasetOptions {
    /// Training-fold sample count.
    pub n_train: usize,
    /// Validation-fold sample count.
    pub n_val: usize,
    /// Test-fold sample count.
    pub n_test: usize,
    /// Bias rate of the train/val environment (synthetic sources; paper
    /// default `ρ = 2.5`).
    pub train_shift: f64,
    /// Bias rate of the test environment (synthetic sources).
    pub test_shift: f64,
    /// Master seed: same seed, same split.
    pub seed: u64,
}

impl Default for DatasetOptions {
    fn default() -> Self {
        Self {
            n_train: 1200,
            n_val: 400,
            n_test: 600,
            train_shift: TRAIN_BIAS_RATE,
            test_shift: -3.0,
            seed: 0,
        }
    }
}

/// A generator closure realising a named dataset at the requested options.
/// Generators are fallible: malformed sizing degrades to a typed
/// [`DataError`] instead of panicking inside the simulator.
pub type DatasetGenerator =
    Box<dyn Fn(&DatasetOptions) -> Result<DataSplit, DataError> + Send + Sync>;

struct DatasetEntry {
    name: String,
    description: String,
    generate: DatasetGenerator,
}

/// The name → generator map. [`DatasetRegistry::builtin`] carries the
/// paper's four benchmarks; [`DatasetRegistry::register`] adds custom ones.
#[derive(Default)]
pub struct DatasetRegistry {
    entries: Vec<DatasetEntry>,
}

impl DatasetRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The registry of the paper's benchmarks.
    pub fn builtin() -> Self {
        let mut r = Self::new();
        r.register(
            "syn_8_8_8_2",
            "Synthetic Syn_8_8_8_2 (8 instruments / 8 confounders / 8 adjusters / 2 unstable)",
            |o| Ok(synthetic_split(SyntheticConfig::syn_8_8_8_2(), o)),
        );
        r.register("syn_16_16_16_2", "Synthetic Syn_16_16_16_2 (high-dimensional variant)", |o| {
            Ok(synthetic_split(SyntheticConfig::syn_16_16_16_2(), o))
        });
        r.register(
            "twins",
            "Twins-like simulator with the paper's augmentation and partitioning protocol",
            |o| {
                let total = (o.n_train + o.n_val + o.n_test).max(100);
                TwinsSimulator::try_new(TwinsConfig { n: total, ..Default::default() }, o.seed)?
                    .try_partition(o.seed)
            },
        );
        r.register(
            "ihdp",
            "IHDP-like simulator with NPCI response surfaces and continuous-covariate shift",
            |o| {
                let total = (o.n_train + o.n_val + o.n_test).max(100);
                // Keep the paper's treated fraction (139 of 747) at any size.
                let n_treated = ((total as f64 * 139.0 / 747.0).round() as usize).max(1);
                let cfg = IhdpConfig { n: total, n_treated, ..IhdpConfig::default() };
                IhdpSimulator::try_new(cfg, o.seed)?.try_replicate(o.seed)
            },
        );
        r
    }

    /// Registers (or shadows) a named generator.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        description: impl Into<String>,
        generate: impl Fn(&DatasetOptions) -> Result<DataSplit, DataError> + Send + Sync + 'static,
    ) {
        let name = name.into();
        self.entries.retain(|e| !e.name.eq_ignore_ascii_case(&name));
        self.entries.push(DatasetEntry {
            name,
            description: description.into(),
            generate: Box::new(generate),
        });
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.name.as_str()).collect()
    }

    /// One-line description of a registered dataset.
    pub fn describe(&self, name: &str) -> Option<&str> {
        self.find(name).map(|e| e.description.as_str())
    }

    /// Whether a name is registered (case-insensitively).
    pub fn contains(&self, name: &str) -> bool {
        self.find(name).is_some()
    }

    /// Realises the named dataset, or returns a typed error listing the
    /// registered names.
    pub fn generate(&self, name: &str, opts: &DatasetOptions) -> Result<DataSplit, DataError> {
        match self.find(name) {
            Some(entry) => (entry.generate)(opts),
            None => Err(DataError::UnknownDataset {
                name: name.to_string(),
                known: self.names().join(", "),
            }),
        }
    }

    fn find(&self, name: &str) -> Option<&DatasetEntry> {
        self.entries.iter().find(|e| e.name.eq_ignore_ascii_case(name))
    }
}

/// Train/val at the training bias rate, test at the (shifted) test rate,
/// all drawn from one seeded causal mechanism.
fn synthetic_split(cfg: SyntheticConfig, o: &DatasetOptions) -> DataSplit {
    let process = SyntheticProcess::new(cfg, o.seed);
    let base = o.seed.wrapping_mul(10);
    DataSplit {
        train: process.generate(o.train_shift, o.n_train, base),
        val: process.generate(o.train_shift, o.n_val, base.wrapping_add(1)),
        test: process.generate(o.test_shift, o.n_test, base.wrapping_add(2)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_names_cover_the_paper_benchmarks() {
        let r = DatasetRegistry::builtin();
        for name in ["syn_8_8_8_2", "syn_16_16_16_2", "twins", "ihdp"] {
            assert!(r.contains(name), "missing builtin dataset {name}");
            assert!(r.describe(name).is_some());
        }
    }

    #[test]
    fn synthetic_generation_honours_options_and_seed() {
        let r = DatasetRegistry::builtin();
        let opts = DatasetOptions { n_train: 150, n_val: 60, n_test: 90, ..Default::default() };
        let a = r.generate("syn_8_8_8_2", &opts).unwrap();
        assert_eq!((a.train.n(), a.val.n(), a.test.n()), (150, 60, 90));
        let b = r.generate("SYN_8_8_8_2", &opts).unwrap(); // case-insensitive
        assert_eq!(a.train.yf, b.train.yf);
        let c = r.generate("syn_8_8_8_2", &DatasetOptions { seed: 9, ..opts }).unwrap();
        assert_ne!(a.train.yf, c.train.yf);
    }

    #[test]
    fn realworld_entries_produce_valid_splits_sized_to_the_total() {
        let r = DatasetRegistry::builtin();
        let opts = DatasetOptions { n_train: 300, n_val: 100, n_test: 100, ..Default::default() };
        for name in ["twins", "ihdp"] {
            let split = r.generate(name, &opts).unwrap();
            split.train.validate().unwrap_or_else(|e| panic!("{name} train: {e}"));
            split.test.validate().unwrap_or_else(|e| panic!("{name} test: {e}"));
            // Folds follow each simulator's own protocol, but the cohort must
            // track the requested total (500), not a hard-coded paper size.
            let total = split.train.n() + split.val.n() + split.test.n();
            assert!(
                (400..=500).contains(&total),
                "{name}: cohort size {total} should track the requested 500"
            );
        }
    }

    #[test]
    fn unknown_names_yield_typed_errors_listing_the_registry() {
        let r = DatasetRegistry::builtin();
        let err = r.generate("mnist", &DatasetOptions::default()).unwrap_err();
        match err {
            DataError::UnknownDataset { name, known } => {
                assert_eq!(name, "mnist");
                assert!(known.contains("ihdp") && known.contains("twins"));
            }
            other => panic!("expected UnknownDataset, got {other:?}"),
        }
    }

    #[test]
    fn custom_entries_can_be_registered_and_shadowed() {
        let mut r = DatasetRegistry::new();
        r.register("tiny", "first", |o| {
            Ok(synthetic_split(
                SyntheticConfig {
                    m_instrument: 2,
                    m_confounder: 2,
                    m_adjustment: 2,
                    m_unstable: 1,
                    pool_factor: 4,
                    threshold_pool: 400,
                },
                o,
            ))
        });
        assert!(r.contains("tiny"));
        r.register("tiny", "second", |o| Ok(synthetic_split(SyntheticConfig::syn_8_8_8_2(), o)));
        assert_eq!(r.names().len(), 1);
        assert_eq!(r.describe("tiny"), Some("second"));
    }
}
