//! Biased-sampling utilities implementing the paper's distribution-shift
//! mechanism.
//!
//! Every dataset in the paper induces OOD populations the same way: each
//! record gets a selection probability
//! `Pr = prod_{X_i in X_V} |rho|^(-10 * D_i)` with
//! `D_i = |Y1 - Y0 - sign(rho) * X_i|` (Sec. V-D/V-E), then records are drawn
//! according to those probabilities. `rho > 1` tilts the sample towards
//! records whose unstable features agree with the treatment effect (positive
//! spurious correlation), `rho < -1` towards disagreement; `|rho|` controls
//! the tilt strength.
//!
//! We realise the tilt with weighted sampling *without replacement*
//! (Efraimidis–Spirakis exponential keys), which reproduces the same biased
//! marginal over a finite pool without the pathological acceptance rates a
//! literal rejection sampler would have at large `|rho|`.

use rand::rngs::StdRng;
use rand::RngExt;

/// Selection weight of one record (log-space internally to avoid underflow).
///
/// `effect` is the record's `Y1 - Y0`; `unstable` are the values of its
/// unstable features `X_V`.
pub fn selection_log_weight(rho: f64, effect: f64, unstable: &[f64]) -> f64 {
    debug_assert!(rho.abs() > 1.0, "the paper uses |rho| > 1 (got {rho})");
    let sign = if rho >= 0.0 { 1.0 } else { -1.0 };
    let log_base = rho.abs().ln();
    let mut log_w = 0.0;
    for &xi in unstable {
        let d = (effect - sign * xi).abs();
        log_w -= 10.0 * d * log_base;
    }
    log_w
}

/// Weighted sampling of `k` distinct indices with probabilities proportional
/// to `exp(log_weights)` (Efraimidis–Spirakis keys, numerically stable in
/// log space).
///
/// # Panics
/// Panics if `k > log_weights.len()`.
#[track_caller]
pub fn weighted_sample_without_replacement(
    rng: &mut StdRng,
    log_weights: &[f64],
    k: usize,
) -> Vec<usize> {
    let n = log_weights.len();
    assert!(k <= n, "cannot draw {k} from {n} records");
    // Key_i = log(u_i) / w_i with w_i = exp(log_w_i); take the k largest.
    // In log space: key_i = log(-log u_i) - log_w_i, take the k *smallest*.
    let mut keyed: Vec<(f64, usize)> = log_weights
        .iter()
        .enumerate()
        .map(|(i, &lw)| {
            let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
            let key = (-u.ln()).ln() - lw;
            (key, i)
        })
        .collect();
    keyed.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut idx: Vec<usize> = keyed.into_iter().take(k).map(|(_, i)| i).collect();
    idx.sort_unstable();
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbrl_tensor::rng::{rng_from_seed, sample_standard_normal};

    #[test]
    fn aligned_records_get_higher_weight() {
        // With rho > 1, an unstable feature equal to the effect gives D = 0.
        let aligned = selection_log_weight(2.5, 1.0, &[1.0]);
        let misaligned = selection_log_weight(2.5, 1.0, &[-1.0]);
        assert!(aligned > misaligned);
        assert_eq!(aligned, 0.0);
    }

    #[test]
    fn negative_rho_flips_the_alignment() {
        let aligned = selection_log_weight(-2.5, 1.0, &[-1.0]);
        let misaligned = selection_log_weight(-2.5, 1.0, &[1.0]);
        assert!(aligned > misaligned);
    }

    #[test]
    fn larger_magnitude_rho_is_a_sharper_tilt() {
        let mild = selection_log_weight(1.3, 1.0, &[0.0]);
        let sharp = selection_log_weight(3.0, 1.0, &[0.0]);
        assert!(sharp < mild, "same D, larger |rho| => smaller weight");
    }

    #[test]
    fn weighted_sampling_prefers_heavy_records() {
        let mut rng = rng_from_seed(0);
        // Record 0 has overwhelming weight.
        let log_w = vec![0.0, -50.0, -50.0, -50.0];
        let mut hits = 0;
        for _ in 0..200 {
            let s = weighted_sample_without_replacement(&mut rng, &log_w, 1);
            if s == vec![0] {
                hits += 1;
            }
        }
        assert!(hits > 195, "heavy record picked {hits}/200 times");
    }

    #[test]
    fn sampling_returns_distinct_sorted_indices() {
        let mut rng = rng_from_seed(1);
        let log_w = vec![0.0; 100];
        let s = weighted_sample_without_replacement(&mut rng, &log_w, 40);
        assert_eq!(s.len(), 40);
        for w in s.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn biased_sampling_induces_effect_feature_correlation() {
        // End-to-end check of the shift mechanism: after sampling with
        // rho = 2.5, the unstable feature should correlate positively with
        // the effect; with rho = -2.5, negatively.
        let mut rng = rng_from_seed(2);
        let n = 4000;
        let effects: Vec<f64> =
            (0..n).map(|_| if rng.random::<f64>() < 0.5 { 1.0 } else { 0.0 }).collect();
        let xv: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
        for (rho, expect_positive) in [(2.5, true), (-2.5, false)] {
            let log_w: Vec<f64> =
                (0..n).map(|i| selection_log_weight(rho, effects[i], &[xv[i]])).collect();
            let idx = weighted_sample_without_replacement(&mut rng, &log_w, 800);
            let me: f64 = idx.iter().map(|&i| effects[i]).sum::<f64>() / 800.0;
            let mx: f64 = idx.iter().map(|&i| xv[i]).sum::<f64>() / 800.0;
            let cov: f64 =
                idx.iter().map(|&i| (effects[i] - me) * (xv[i] - mx)).sum::<f64>() / 800.0;
            if expect_positive {
                assert!(cov > 0.05, "rho=2.5 cov {cov}");
            } else {
                assert!(cov < -0.05, "rho=-2.5 cov {cov}");
            }
        }
    }
}
