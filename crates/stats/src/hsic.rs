//! Hilbert–Schmidt Independence Criterion with Random Fourier Features
//! (HSIC-RFF) — the paper's Independence Regularizer machinery (Eq. 5–10).
//!
//! For two scalar features `A`, `B` and random Fourier functions
//! `u_i(x) = sqrt(2) cos(w_i x + phi_i)` with `w ~ N(0,1)`,
//! `phi ~ U(0, 2*pi)` (Eq. 6), the statistic is the squared Frobenius norm of
//! the cross-covariance of the feature maps (Eq. 7). The weighted version
//! (Eq. 9) plugs normalised sample weights into the covariance. The
//! decorrelation loss `L_D` (Eq. 10) sums the statistic over feature pairs.
//!
//! Implementation notes (recorded in DESIGN.md):
//! * one bank of `k` Fourier functions is shared across features (they are
//!   identically distributed, so this is a variance-reduction-neutral
//!   simplification that lets the pair sum collapse into a single
//!   block-covariance computation);
//! * the `a = b` self-dependence term of Eq. 10 is excluded by default (it
//!   penalises feature variance rather than dependence); set
//!   [`DecorrelationConfig::include_diagonal`] to restore the literal sum;
//! * features can be standardised and column-subsampled per call to keep the
//!   loss scale-free and affordable on wide layers.

use rand::rngs::StdRng;
use sbrl_tensor::kernels::{
    effective_workers, par_map_values, reduce_sum, NumericsMode, Parallelism,
};
use sbrl_tensor::rng::{permutation_into, sample_standard_normal, sample_uniform};
use sbrl_tensor::{Graph, Matrix, TensorId};

use crate::kernels::{median_bandwidth, rbf_kernel_with};

/// Minimum `column pairs x samples` units a worker must own before the
/// pairwise HSIC matrix spawns it.
const MIN_PAIR_SAMPLES_PER_WORKER: usize = 1 << 13;

/// Minimum `n x n` trace terms a worker must own before the fast-mode
/// biased-HSIC trace spawns it.
const MIN_TRACE_TERMS_PER_WORKER: usize = 1 << 14;

/// A bank of `k` random Fourier functions shared across features.
#[derive(Clone, Debug)]
pub struct Rff {
    omegas: Vec<f64>,
    phis: Vec<f64>,
}

impl Rff {
    /// The paper's default number of Fourier functions per feature.
    pub const DEFAULT_NUM_FUNCTIONS: usize = 5;

    /// Samples `k` functions `(w_i, phi_i)` from `N(0,1) x U(0, 2*pi)`.
    pub fn sample(rng: &mut StdRng, k: usize) -> Self {
        let omegas = (0..k).map(|_| sample_standard_normal(rng)).collect();
        let phis = (0..k).map(|_| sample_uniform(rng, 0.0, 2.0 * std::f64::consts::PI)).collect();
        Self { omegas, phis }
    }

    /// Number of functions in the bank.
    pub fn num_functions(&self) -> usize {
        self.omegas.len()
    }

    /// Applies function `i` to a scalar.
    #[inline]
    pub fn apply(&self, i: usize, x: f64) -> f64 {
        (2.0f64).sqrt() * (self.omegas[i] * x + self.phis[i]).cos()
    }

    /// Feature map of a scalar series: `n x k` matrix `U` with
    /// `U[r][i] = u_i(x_r)`.
    pub fn feature_map(&self, xs: &[f64]) -> Matrix {
        Matrix::from_fn(xs.len(), self.num_functions(), |r, i| self.apply(i, xs[r]))
    }
}

fn normalized_weights(weights: Option<&[f64]>, n: usize) -> Vec<f64> {
    match weights {
        None => vec![1.0 / n as f64; n],
        Some(w) => {
            assert_eq!(w.len(), n, "weight length mismatch");
            let total: f64 = w.iter().sum::<f64>().max(1e-12);
            w.iter().map(|x| x / total).collect()
        }
    }
}

/// Weighted `HSIC_RFF` between two scalar series (Eq. 7 / Eq. 9):
/// `|| Cov_w(u(A), v(B)) ||_F^2`.
///
/// # Panics
/// Panics if the series lengths differ.
#[track_caller]
pub fn hsic_rff_pair(a: &[f64], b: &[f64], rff: &Rff, weights: Option<&[f64]>) -> f64 {
    assert_eq!(a.len(), b.len(), "hsic_rff_pair: length mismatch");
    let n = a.len();
    if n == 0 {
        return 0.0;
    }
    let w = normalized_weights(weights, n);
    let u = rff.feature_map(a);
    let v = rff.feature_map(b);
    let k = rff.num_functions();

    let mut mean_u = vec![0.0; k];
    let mut mean_v = vec![0.0; k];
    for r in 0..n {
        for i in 0..k {
            mean_u[i] += w[r] * u[(r, i)];
            mean_v[i] += w[r] * v[(r, i)];
        }
    }
    cross_cov_frob2(&u, &v, &mean_u, &mean_v, &w, NumericsMode::global())
}

/// Symmetric `d x d` matrix of pairwise `HSIC_RFF` values between the columns
/// of `z` — the quantity visualised in the paper's Fig. 5.
///
/// Uses the process-global [`Parallelism`] and [`NumericsMode`] knobs; see
/// [`pairwise_hsic_matrix_with`] for explicit settings.
pub fn pairwise_hsic_matrix(z: &Matrix, rff: &Rff, weights: Option<&[f64]>) -> Matrix {
    pairwise_hsic_matrix_with(z, rff, weights, Parallelism::global(), NumericsMode::global())
}

/// [`pairwise_hsic_matrix`] under explicit [`Parallelism`] and
/// [`NumericsMode`] settings.
///
/// The Fourier feature map and its weighted column means are computed
/// **once per column** (not once per pair, which used to re-extract every
/// column into fresh vectors on each call) and shared read-only across the
/// `d (d + 1) / 2` unordered pairs; each pair's statistic is then computed
/// independently by exactly one worker from the same per-column values the
/// pairwise evaluation would produce, so for a fixed mode the result is
/// bit-identical for every worker count ([`NumericsMode::Fast`] swaps the
/// per-pair covariance fold for a four-accumulator variant).
pub fn pairwise_hsic_matrix_with(
    z: &Matrix,
    rff: &Rff,
    weights: Option<&[f64]>,
    par: Parallelism,
    mode: NumericsMode,
) -> Matrix {
    let d = z.cols();
    let n = z.rows();
    if d == 0 {
        return Matrix::zeros(0, 0);
    }
    if n == 0 {
        return Matrix::zeros(d, d);
    }
    let w = normalized_weights(weights, n);
    let k = rff.num_functions();
    // One transpose makes every column a contiguous row slice; per-column
    // feature maps and weighted means are then computed exactly once.
    let zt = z.transpose();
    let maps: Vec<Matrix> = (0..d).map(|j| rff.feature_map(zt.row(j))).collect();
    let means: Vec<Vec<f64>> = maps
        .iter()
        .map(|u| {
            let mut mean = vec![0.0; k];
            for r in 0..n {
                for i in 0..k {
                    mean[i] += w[r] * u[(r, i)];
                }
            }
            mean
        })
        .collect();

    let pairs: Vec<(usize, usize)> = (0..d).flat_map(|a| (a..d).map(move |b| (a, b))).collect();
    // Gate the shard count on pairs x samples (each pair is O(n) in the
    // sample count for a fixed Fourier bank).
    let workers = effective_workers(par, pairs.len() * n.max(1), MIN_PAIR_SAMPLES_PER_WORKER);
    let vals = par_map_values(pairs.len(), workers, |p| {
        let (a, b) = pairs[p];
        cross_cov_frob2(&maps[a], &maps[b], &means[a], &means[b], &w, mode)
    });
    let mut out = Matrix::zeros(d, d);
    for (&(a, b), &v) in pairs.iter().zip(&vals) {
        out[(a, b)] = v;
        out[(b, a)] = v;
    }
    out
}

/// `|| Cov_w(u, v) ||_F^2` from precomputed feature maps and weighted means
/// — the shared kernel of [`hsic_rff_pair`] and [`pairwise_hsic_matrix`]
/// (identical accumulation order in both). [`NumericsMode::BitExact`] keeps
/// the historical serial fold per covariance entry;
/// [`NumericsMode::Fast`] uses four independent accumulators, a reduction
/// shape that depends only on the sample count.
fn cross_cov_frob2(
    u: &Matrix,
    v: &Matrix,
    mean_u: &[f64],
    mean_v: &[f64],
    w: &[f64],
    mode: NumericsMode,
) -> f64 {
    let n = u.rows();
    let k = u.cols();
    if mode.is_fast() {
        let (us, vs) = (u.as_slice(), v.as_slice());
        let mut frob2 = 0.0;
        for (i, &mu) in mean_u.iter().enumerate() {
            for (j, &mv) in mean_v.iter().enumerate() {
                let cov = weighted_col_prod_fast(us, vs, w, k, i, j) - mu * mv;
                frob2 += cov * cov;
            }
        }
        return frob2;
    }
    let mut frob2 = 0.0;
    for i in 0..k {
        for j in 0..k {
            let mut cov = 0.0;
            for r in 0..n {
                cov += w[r] * u[(r, i)] * v[(r, j)];
            }
            cov -= mean_u[i] * mean_v[j];
            frob2 += cov * cov;
        }
    }
    frob2
}

/// Fast-mode weighted column product `Σ_r w[r] · u[r][i] · v[r][j]` over
/// row-major `n x k` feature maps, with four independent accumulators.
#[inline]
fn weighted_col_prod_fast(us: &[f64], vs: &[f64], w: &[f64], k: usize, i: usize, j: usize) -> f64 {
    let n = w.len();
    let mut acc = [0.0f64; 4];
    let mut r = 0;
    while r + 4 <= n {
        acc[0] += w[r] * us[r * k + i] * vs[r * k + j];
        acc[1] += w[r + 1] * us[(r + 1) * k + i] * vs[(r + 1) * k + j];
        acc[2] += w[r + 2] * us[(r + 2) * k + i] * vs[(r + 2) * k + j];
        acc[3] += w[r + 3] * us[(r + 3) * k + i] * vs[(r + 3) * k + j];
        r += 4;
    }
    while r < n {
        acc[0] += w[r] * us[r * k + i] * vs[r * k + j];
        r += 1;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// Mean of the off-diagonal entries of [`pairwise_hsic_matrix`] — the
/// "average HSIC_RFF" the paper reports for Fig. 5 (0.85 / 0.64 / 0.58).
pub fn mean_offdiag_hsic(z: &Matrix, rff: &Rff, weights: Option<&[f64]>) -> f64 {
    let d = z.cols();
    if d < 2 {
        return 0.0;
    }
    let m = pairwise_hsic_matrix(z, rff, weights);
    let mut acc = 0.0;
    for a in 0..d {
        for b in 0..d {
            if a != b {
                acc += m[(a, b)];
            }
        }
    }
    acc / (d * (d - 1)) as f64
}

/// Classic biased HSIC estimator `tr(K_a H K_b H) / (n-1)^2` with RBF
/// kernels (test oracle for the RFF approximation's behaviour).
///
/// Non-positive bandwidths select the median heuristic per input. The
/// centring by `H = I - 11^T/n` is applied **implicitly**: `K_a` is
/// double-centred through its row/column/grand means and the trace collapses
/// to an elementwise dot with the (symmetric) `K_b`, so the estimator costs
/// O(n²) instead of the two O(n³) GEMMs that materialising
/// `centering_matrix(n)` used to pay. Mathematically identical to the
/// explicit product (up to floating-point summation order); the O(n²)
/// kernel fills still parallelise under the global [`Parallelism`] knob.
///
/// # Example
///
/// ```
/// use sbrl_stats::hsic_biased;
/// use sbrl_tensor::rng::{randn, rng_from_seed};
///
/// let mut rng = rng_from_seed(0);
/// let x = randn(&mut rng, 100, 1);
/// let y_dependent = x.map(|v| v * v); // uncorrelated but dependent
/// let y_independent = randn(&mut rng, 100, 1);
/// // Negative bandwidths select the median heuristic.
/// let dep = hsic_biased(&x, &y_dependent, -1.0, -1.0);
/// let ind = hsic_biased(&x, &y_independent, -1.0, -1.0);
/// assert!(dep > ind);
/// ```
#[track_caller]
pub fn hsic_biased(a: &Matrix, b: &Matrix, sigma_a: f64, sigma_b: f64) -> f64 {
    hsic_biased_with(a, b, sigma_a, sigma_b, Parallelism::global(), NumericsMode::global())
}

/// [`hsic_biased`] under explicit [`Parallelism`] and [`NumericsMode`]
/// settings. [`NumericsMode::BitExact`] keeps the historical serial
/// row-mean and trace folds; [`NumericsMode::Fast`] shards the trace over
/// rows and reduces with pairwise trees whose shape depends only on `n`, so
/// each mode is deterministic for every worker count. (A non-positive
/// bandwidth still resolves through the global-knob median heuristic.)
#[track_caller]
pub fn hsic_biased_with(
    a: &Matrix,
    b: &Matrix,
    sigma_a: f64,
    sigma_b: f64,
    par: Parallelism,
    mode: NumericsMode,
) -> f64 {
    assert_eq!(a.rows(), b.rows(), "hsic_biased: sample counts differ");
    let n = a.rows();
    if n < 2 {
        return 0.0;
    }
    let sa = if sigma_a > 0.0 { sigma_a } else { median_bandwidth(a) };
    let sb = if sigma_b > 0.0 { sigma_b } else { median_bandwidth(b) };
    let ka = rbf_kernel_with(a, a, sa, par, mode);
    let kb = rbf_kernel_with(b, b, sb, par, mode);

    // Implicit double-centring of K_a: with H = I - 11^T/n,
    //   (H K_a H)[i][j] = K_a[i][j] - r_i - r_j + m
    // where r_i are row means (K_a is symmetric, so column means coincide)
    // and m is the grand mean. By trace cyclicity and K_b's symmetry,
    //   tr(K_a H K_b H) = Σ_ij (H K_a H)[i][j] · K_b[i][j].
    let inv_n = 1.0 / n as f64;
    let row_means: Vec<f64> = (0..n).map(|i| reduce_sum(ka.row(i), mode) * inv_n).collect();
    let grand_mean = reduce_sum(&row_means, mode) * inv_n;
    let denom = ((n - 1) * (n - 1)) as f64;
    if mode.is_fast() {
        let workers = effective_workers(par, n * n, MIN_TRACE_TERMS_PER_WORKER);
        let row_traces = par_map_values(n, workers, |i| {
            centred_row_trace_fast(ka.row(i), kb.row(i), &row_means, row_means[i], grand_mean)
        });
        return reduce_sum(&row_traces, mode) / denom;
    }
    let mut trace = 0.0;
    for i in 0..n {
        let r_i = row_means[i];
        for (j, (&kav, &kbv)) in ka.row(i).iter().zip(kb.row(i)).enumerate() {
            trace += (kav - r_i - row_means[j] + grand_mean) * kbv;
        }
    }
    trace / denom
}

/// Fast-mode row contribution `Σ_j (ka[j] - r_i - r[j] + m) · kb[j]` of the
/// implicitly-centred HSIC trace, with four independent accumulators.
#[inline]
// lint: no_alloc
fn centred_row_trace_fast(
    ka: &[f64],
    kb: &[f64],
    row_means: &[f64],
    r_i: f64,
    grand_mean: f64,
) -> f64 {
    let n = ka.len();
    let off = grand_mean - r_i;
    let mut acc = [0.0f64; 4];
    let mut j = 0;
    while j + 4 <= n {
        acc[0] += (ka[j] - row_means[j] + off) * kb[j];
        acc[1] += (ka[j + 1] - row_means[j + 1] + off) * kb[j + 1];
        acc[2] += (ka[j + 2] - row_means[j + 2] + off) * kb[j + 2];
        acc[3] += (ka[j + 3] - row_means[j + 3] + off) * kb[j + 3];
        j += 4;
    }
    while j < n {
        acc[0] += (ka[j] - row_means[j] + off) * kb[j];
        j += 1;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// Options for the differentiable decorrelation loss `L_D` (Eq. 10).
#[derive(Clone, Copy, Debug)]
pub struct DecorrelationConfig {
    /// Include the `a = b` self-dependence terms of the literal Eq. 10 sum.
    pub include_diagonal: bool,
    /// Standardise columns (batch mean/std treated as constants) before the
    /// Fourier map, keeping the cosine features in a well-conditioned range.
    pub standardize: bool,
    /// Cap on the number of feature columns considered per call; wider
    /// layers are subsampled without replacement. `None` = all columns.
    pub max_features: Option<usize>,
    /// Divide by the number of feature pairs so the loss magnitude (and the
    /// paper's γ coefficients) transfer across layer widths.
    pub normalize: bool,
}

impl Default for DecorrelationConfig {
    fn default() -> Self {
        Self { include_diagonal: false, standardize: true, max_features: Some(32), normalize: true }
    }
}

/// Per-fit scratch space for the SBRL decorrelation regularizer.
///
/// The weight-phase loss is rebuilt every optimiser step; this scratch keeps
/// the step-invariant pieces alive across steps — currently the
/// column-subsample permutation buffer, refilled in place with the same RNG
/// draws as `sample_without_replacement` — so a warmed-up step allocates
/// nothing in this module. All tensor values flow through the graph's own
/// buffer pool, so results are bit-identical with or without a reused
/// scratch.
#[derive(Default)]
pub struct HsicScratch {
    perm: Vec<usize>,
    coefs: Vec<(f64, f64)>,
}

impl HsicScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Differentiable weighted decorrelation loss `L_D(Z, w)` (Eq. 10):
/// the sum over feature pairs of `HSIC^w_RFF` between columns of `z`.
///
/// `w` is an `n x 1` column of positive sample weights (renormalised
/// internally, Eq. 9); gradients flow into both `z` and `w`. `rng` drives the
/// per-call column subsample when [`DecorrelationConfig::max_features`] caps
/// the width.
///
/// Allocates a fresh [`HsicScratch`] per call; step loops should hold one
/// scratch per fit and use [`decorrelation_loss_graph_scratch`] instead.
pub fn decorrelation_loss_graph(
    g: &mut Graph,
    z: TensorId,
    w: TensorId,
    rff: &Rff,
    cfg: &DecorrelationConfig,
    rng: &mut StdRng,
) -> TensorId {
    let mut scratch = HsicScratch::new();
    decorrelation_loss_graph_scratch(g, z, w, rff, cfg, rng, &mut scratch)
}

/// [`decorrelation_loss_graph`] with an explicit per-fit [`HsicScratch`] —
/// the allocation-free variant the trainer's weight phase uses every step.
/// Bit-identical to the scratch-free version for the same RNG state.
#[allow(clippy::too_many_arguments)]
pub fn decorrelation_loss_graph_scratch(
    g: &mut Graph,
    z: TensorId,
    w: TensorId,
    rff: &Rff,
    cfg: &DecorrelationConfig,
    rng: &mut StdRng,
    scratch: &mut HsicScratch,
) -> TensorId {
    let (n, d_full) = g.value(z).shape();
    if n < 2 || d_full < 1 {
        return g.scalar_const(0.0);
    }

    // Column subsample for wide layers (identical RNG draws to
    // `sample_without_replacement`, buffer reused across steps).
    let z = match cfg.max_features {
        Some(s) if d_full > s => {
            permutation_into(rng, &mut scratch.perm, d_full);
            g.gather_cols(z, &scratch.perm[..s])
        }
        _ => z,
    };
    let d = g.value(z).cols();
    if d < 2 && !cfg.include_diagonal {
        return g.scalar_const(0.0);
    }

    // Optional standardisation with batch statistics held constant. The
    // statistics are computed straight into pooled graph buffers with the
    // same accumulation order as `mean_axis0` / `std_axis0`.
    let z = if cfg.standardize {
        let mut mean = g.take_buffer(1, d);
        {
            let zv = g.value(z);
            mean.fill_with(0.0);
            for i in 0..n {
                for (m, &v) in mean.as_mut_slice().iter_mut().zip(zv.row(i)) {
                    *m += v;
                }
            }
            let inv = 1.0 / n as f64;
            for m in mean.as_mut_slice() {
                *m *= inv;
            }
        }
        let mut inv_std = g.take_buffer(1, d);
        {
            let zv = g.value(z);
            inv_std.fill_with(0.0);
            for i in 0..n {
                for ((s, &v), &m) in
                    inv_std.as_mut_slice().iter_mut().zip(zv.row(i)).zip(mean.as_slice())
                {
                    let dv = v - m;
                    *s += dv * dv;
                }
            }
            let inv = 1.0 / n as f64;
            for s in inv_std.as_mut_slice() {
                *s = 1.0 / (*s * inv).sqrt().max(1e-6);
            }
        }
        let mean_c = g.constant(mean);
        let inv_std_c = g.constant(inv_std);
        let centred = g.sub_row(z, mean_c);
        g.mul_row(centred, inv_std_c)
    } else {
        z
    };

    // F = [sqrt(2) cos(w_1 z + phi_1) | ... | sqrt(2) cos(w_k z + phi_k)],
    // shape n x (k*d); feature `a`'s functions sit at columns {a, d+a, ...}.
    // One fused tape node builds the whole matrix (bit-identical to the
    // historical per-function scale/add_scalar/cos/scale + concat chain).
    let sqrt2 = (2.0f64).sqrt();
    scratch.coefs.clear();
    scratch.coefs.extend(rff.omegas.iter().copied().zip(rff.phis.iter().copied()));
    let f = g.rff_features(z, &scratch.coefs, sqrt2);

    // Normalised weights and weighted covariance C = F^T diag(w_hat) F - m m^T.
    let w_sum = g.sum(w);
    let w_safe = g.add_scalar(w_sum, 1e-12);
    let w_hat = g.div_scalar_of(w, w_safe);
    let fw = g.mul_col(f, w_hat);
    let mean = g.sum_axis0(fw); // 1 x kd (weighted mean)
    let raw = g.matmul_tn(f, fw); // kd x kd, fused transpose
    let mean_t = g.transpose(mean);
    let mm = g.matmul(mean_t, mean);
    let cov = g.sub(raw, mm);

    // Block masks: entry (p, q) belongs to feature pair (p mod d, q mod d).
    // The fused reduction applies the {0,1} mask arithmetic on the fly —
    // bit-identical to materialising the mask matrix, with no mask traffic.
    let off_sum = g.block_masked_sumsq(cov, d, false);
    let mut loss = g.scale(off_sum, 0.5); // each unordered pair counted twice

    let mut num_pairs = (d * (d - 1) / 2) as f64;
    if cfg.include_diagonal {
        let diag_sum = g.block_masked_sumsq(cov, d, true);
        loss = g.add(loss, diag_sum);
        num_pairs += d as f64;
    }

    if cfg.normalize && num_pairs > 0.0 {
        loss = g.scale(loss, 1.0 / num_pairs);
    }
    loss
}

/// Plain (non-differentiable) value of the decorrelation loss with unit
/// semantics matching [`decorrelation_loss_graph`] minus subsampling —
/// useful for evaluation and tests.
pub fn decorrelation_loss_plain(
    z: &Matrix,
    weights: Option<&[f64]>,
    rff: &Rff,
    include_diagonal: bool,
    normalize: bool,
) -> f64 {
    let d = z.cols();
    let mut acc = 0.0;
    let mut pairs = 0usize;
    // One transpose turns every column into a borrowable contiguous row.
    let zt = z.transpose();
    for a in 0..d {
        let lo = if include_diagonal { a } else { a + 1 };
        for b in lo..d {
            acc += hsic_rff_pair(zt.row(a), zt.row(b), rff, weights);
            pairs += 1;
        }
    }
    if normalize && pairs > 0 {
        acc / pairs as f64
    } else {
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbrl_tensor::rng::{randn, rng_from_seed, sample_standard_normal};

    #[test]
    fn independent_features_have_small_hsic() {
        let mut rng = rng_from_seed(0);
        let rff = Rff::sample(&mut rng, 5);
        let a: Vec<f64> = (0..500).map(|_| sample_standard_normal(&mut rng)).collect();
        let b: Vec<f64> = (0..500).map(|_| sample_standard_normal(&mut rng)).collect();
        let indep = hsic_rff_pair(&a, &b, &rff, None);
        let dep = hsic_rff_pair(&a, &a, &rff, None);
        assert!(indep < dep * 0.1, "independent {indep} vs self {dep}");
    }

    #[test]
    fn nonlinear_dependence_is_detected() {
        let mut rng = rng_from_seed(1);
        let rff = Rff::sample(&mut rng, 8);
        let a: Vec<f64> = (0..800).map(|_| sample_standard_normal(&mut rng)).collect();
        let b: Vec<f64> = a.iter().map(|x| x * x).collect(); // uncorrelated but dependent
        let c: Vec<f64> = (0..800).map(|_| sample_standard_normal(&mut rng)).collect();
        let dep = hsic_rff_pair(&a, &b, &rff, None);
        let indep = hsic_rff_pair(&a, &c, &rff, None);
        assert!(dep > 3.0 * indep, "nonlinear dep {dep} vs indep {indep}");
    }

    #[test]
    fn weights_can_remove_dependence() {
        // Construct dependence by concatenating (x, x) pairs and (x, -x)
        // pairs; weighting only one half leaves a dependent sample, weighting
        // both halves equally cancels the linear dependence.
        let mut rng = rng_from_seed(2);
        let rff = Rff::sample(&mut rng, 6);
        let n = 400;
        let x: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
        let mut a = Vec::with_capacity(2 * n);
        let mut b = Vec::with_capacity(2 * n);
        for &v in &x {
            a.push(v);
            b.push(v);
        }
        for &v in &x {
            a.push(v);
            b.push(-v);
        }
        // All mass on the first half: strongly dependent.
        let mut w_first = vec![1.0; 2 * n];
        for wv in w_first.iter_mut().skip(n) {
            *wv = 1e-9;
        }
        let dep = hsic_rff_pair(&a, &b, &rff, Some(&w_first));
        let balanced = hsic_rff_pair(&a, &b, &rff, None);
        assert!(balanced < dep * 0.7, "balanced {balanced} vs skewed {dep}");
    }

    #[test]
    fn unit_weights_match_unweighted() {
        let mut rng = rng_from_seed(3);
        let rff = Rff::sample(&mut rng, 5);
        let a: Vec<f64> = (0..100).map(|_| sample_standard_normal(&mut rng)).collect();
        let b: Vec<f64> = a.iter().map(|x| x.sin()).collect();
        let w = vec![1.0; 100];
        let lhs = hsic_rff_pair(&a, &b, &rff, Some(&w));
        let rhs = hsic_rff_pair(&a, &b, &rff, None);
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn biased_hsic_oracle_agrees_qualitatively() {
        let mut rng = rng_from_seed(4);
        let x = randn(&mut rng, 150, 1);
        let y_dep = x.map(|v| v * v);
        let y_ind = randn(&mut rng, 150, 1);
        let dep = hsic_biased(&x, &y_dep, -1.0, -1.0);
        let ind = hsic_biased(&x, &y_ind, -1.0, -1.0);
        assert!(dep > 3.0 * ind, "dep {dep} vs ind {ind}");
    }

    #[test]
    fn pairwise_matrix_is_symmetric_with_selfdependence_on_diagonal() {
        let mut rng = rng_from_seed(5);
        let rff = Rff::sample(&mut rng, 5);
        let z = randn(&mut rng, 200, 4);
        let m = pairwise_hsic_matrix(&z, &rff, None);
        assert_eq!(m.shape(), (4, 4));
        for a in 0..4 {
            for b in 0..4 {
                assert!((m[(a, b)] - m[(b, a)]).abs() < 1e-12);
            }
            assert!(m[(a, a)] > 0.0);
        }
    }

    #[test]
    fn mean_offdiag_tracks_dependence_level() {
        let mut rng = rng_from_seed(6);
        let rff = Rff::sample(&mut rng, 5);
        let base = randn(&mut rng, 300, 1);
        // Dependent: all columns are noisy copies of one factor.
        let noise = randn(&mut rng, 300, 3).scale(0.1);
        let mut dep = Matrix::zeros(300, 3);
        for i in 0..300 {
            for j in 0..3 {
                dep[(i, j)] = base[(i, 0)] + noise[(i, j)];
            }
        }
        let ind = randn(&mut rng, 300, 3);
        assert!(mean_offdiag_hsic(&dep, &rff, None) > 5.0 * mean_offdiag_hsic(&ind, &rff, None));
    }

    #[test]
    fn graph_loss_matches_plain_loss() {
        let mut rng = rng_from_seed(7);
        let rff = Rff::sample(&mut rng, 5);
        let z = randn(&mut rng, 60, 4);
        let plain = decorrelation_loss_plain(&z, None, &rff, false, true);
        let mut g = Graph::new();
        let zc = g.constant(z.clone());
        let w = g.constant(Matrix::ones(60, 1));
        let cfg = DecorrelationConfig {
            include_diagonal: false,
            standardize: false,
            max_features: None,
            normalize: true,
        };
        let mut rng2 = rng_from_seed(0);
        let loss = decorrelation_loss_graph(&mut g, zc, w, &rff, &cfg, &mut rng2);
        assert!((g.scalar(loss) - plain).abs() < 1e-9, "graph {} vs plain {plain}", g.scalar(loss));
    }

    #[test]
    fn graph_loss_with_diagonal_matches_plain() {
        let mut rng = rng_from_seed(8);
        let rff = Rff::sample(&mut rng, 4);
        let z = randn(&mut rng, 40, 3);
        let plain = decorrelation_loss_plain(&z, None, &rff, true, false);
        let mut g = Graph::new();
        let zc = g.constant(z.clone());
        let w = g.constant(Matrix::ones(40, 1));
        let cfg = DecorrelationConfig {
            include_diagonal: true,
            standardize: false,
            max_features: None,
            normalize: false,
        };
        let mut rng2 = rng_from_seed(0);
        let loss = decorrelation_loss_graph(&mut g, zc, w, &rff, &cfg, &mut rng2);
        assert!((g.scalar(loss) - plain).abs() < 1e-9, "graph {} vs plain {plain}", g.scalar(loss));
    }

    #[test]
    fn gradcheck_decorrelation_wrt_representation() {
        use sbrl_tensor::gradcheck::check_gradient;
        let mut rng = rng_from_seed(9);
        let rff = Rff::sample(&mut rng, 3);
        let z0 = randn(&mut rng, 12, 3);
        let cfg = DecorrelationConfig {
            include_diagonal: false,
            standardize: false,
            max_features: None,
            normalize: true,
        };
        check_gradient(
            &move |g, z| {
                let w = g.constant(Matrix::ones(12, 1));
                let mut r = rng_from_seed(1);
                decorrelation_loss_graph(g, z, w, &rff, &cfg, &mut r)
            },
            &z0,
            1e-5,
            1e-4,
        )
        .unwrap();
    }

    #[test]
    fn gradcheck_decorrelation_wrt_weights() {
        use sbrl_tensor::gradcheck::check_gradient;
        let mut rng = rng_from_seed(10);
        let rff = Rff::sample(&mut rng, 3);
        let z = randn(&mut rng, 12, 3);
        let w0 = randn(&mut rng, 12, 1).map(|v| 1.0 + 0.2 * v.tanh());
        let cfg = DecorrelationConfig {
            include_diagonal: true,
            standardize: false,
            max_features: None,
            normalize: true,
        };
        check_gradient(
            &move |g, w| {
                let zc = g.constant(z.clone());
                let mut r = rng_from_seed(1);
                decorrelation_loss_graph(g, zc, w, &rff, &cfg, &mut r)
            },
            &w0,
            1e-5,
            1e-4,
        )
        .unwrap();
    }

    #[test]
    fn subsampling_caps_the_feature_count() {
        let mut rng = rng_from_seed(11);
        let rff = Rff::sample(&mut rng, 5);
        let z = randn(&mut rng, 30, 20);
        let mut g = Graph::new();
        let zc = g.constant(z);
        let w = g.constant(Matrix::ones(30, 1));
        let cfg = DecorrelationConfig { max_features: Some(4), ..Default::default() };
        let loss = decorrelation_loss_graph(&mut g, zc, w, &rff, &cfg, &mut rng);
        assert!(g.scalar(loss).is_finite());
        // With 4-of-20 columns, two different subsample draws should look at
        // different column sets and hence yield different losses.
        let loss2 = decorrelation_loss_graph(&mut g, zc, w, &rff, &cfg, &mut rng);
        assert_ne!(g.scalar(loss), g.scalar(loss2), "subsampling should vary across draws");
    }
}
