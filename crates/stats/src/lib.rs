//! # sbrl-stats
//!
//! Statistical machinery of the SBRL-HAP reproduction:
//!
//! * [`kernels`] — pairwise distances, RBF kernels, median-heuristic
//!   bandwidths, centering matrices;
//! * [`ipm`] — integral probability metrics between treated and control
//!   groups (linear MMD, RBF MMD², Sinkhorn-Wasserstein), weighted and
//!   unweighted, in plain and differentiable graph forms (Eq. 3–4);
//! * [`hsic`] — HSIC with Random Fourier Features, the weighted
//!   decorrelation loss `L_D` (Eq. 5–10) and the pairwise-HSIC diagnostics
//!   behind the paper's Fig. 5.

pub mod hsic;
pub mod ipm;
pub mod kernels;

pub use hsic::{
    decorrelation_loss_graph, decorrelation_loss_plain, hsic_biased, hsic_rff_pair,
    mean_offdiag_hsic, pairwise_hsic_matrix, DecorrelationConfig, Rff,
};
pub use ipm::{ipm_graph, ipm_plain, ipm_weighted_graph, ipm_weighted_plain, IpmKind};
pub use kernels::{centering_matrix, median_bandwidth, pairwise_sq_dists, rbf_kernel};
