//! # sbrl-stats
//!
//! Statistical machinery of the SBRL-HAP reproduction:
//!
//! * [`kernels`] — pairwise distances, RBF kernels, median-heuristic
//!   bandwidths, centering matrices;
//! * [`ipm`] — integral probability metrics between treated and control
//!   groups (linear MMD, RBF MMD², Sinkhorn-Wasserstein), weighted and
//!   unweighted, in plain and differentiable graph forms (Eq. 3–4);
//! * [`hsic`] — HSIC with Random Fourier Features, the weighted
//!   decorrelation loss `L_D` (Eq. 5–10) and the pairwise-HSIC diagnostics
//!   behind the paper's Fig. 5.
//!
//! The O(n²) pairwise loops (kernel matrices, HSIC pair sums, Sinkhorn
//! updates) are sharded across the workspace-wide
//! [`Parallelism`](sbrl_tensor::kernels::Parallelism) knob with
//! bit-identical results for every thread count, and honour the
//! [`NumericsMode`](sbrl_tensor::kernels::NumericsMode) tier: `BitExact`
//! (default) keeps the historical serial folds, `Fast` swaps in
//! multi-accumulator / pairwise-tree reductions that are deterministic for
//! every worker count but not bit-identical to `BitExact`. The `*_with`
//! variants accept explicit settings.

#![warn(missing_docs)]

pub mod hsic;
pub mod ipm;
pub mod kernels;

pub use hsic::{
    decorrelation_loss_graph, decorrelation_loss_graph_scratch, decorrelation_loss_plain,
    hsic_biased, hsic_biased_with, hsic_rff_pair, mean_offdiag_hsic, pairwise_hsic_matrix,
    pairwise_hsic_matrix_with, DecorrelationConfig, HsicScratch, Rff,
};
pub use ipm::{
    ipm_graph, ipm_plain, ipm_weighted_graph, ipm_weighted_plain, ipm_weighted_plain_with, IpmKind,
};
pub use kernels::{
    centering_matrix, median_bandwidth, pairwise_sq_dists, pairwise_sq_dists_with, rbf_kernel,
    rbf_kernel_with,
};
