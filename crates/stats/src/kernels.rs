//! Kernel primitives: pairwise distances, RBF kernels and bandwidth
//! heuristics (plain-matrix, non-differentiable versions).
//!
//! The O(n·m) fills are row-sharded across the workspace's
//! [`Parallelism`] knob; every setting produces bit-identical matrices
//! because each output row is computed independently by exactly one worker.
//! Under [`NumericsMode::Fast`] the row squared-norms and the `A Bᵀ` cross
//! term switch to the FMA/pairwise-tree reductions of `sbrl-tensor`, which
//! stay deterministic for every thread count but are not bit-identical to
//! the default [`NumericsMode::BitExact`] chains.

use sbrl_tensor::kernels::{
    effective_workers, gemm_nt_mode, par_for_row_chunks, reduce_dot, NumericsMode, Parallelism,
};
use sbrl_tensor::Matrix;

/// Minimum number of output elements a worker must own before the pairwise
/// fills spawn it.
const MIN_ELEMS_PER_WORKER: usize = 1 << 14;

/// Pairwise squared Euclidean distances between the rows of `a` (`n x d`)
/// and the rows of `b` (`m x d`), returned as an `n x m` matrix.
///
/// Uses the process-global [`Parallelism`] and [`NumericsMode`] knobs; see
/// [`pairwise_sq_dists_with`] for explicit settings.
#[track_caller]
pub fn pairwise_sq_dists(a: &Matrix, b: &Matrix) -> Matrix {
    pairwise_sq_dists_with(a, b, Parallelism::global(), NumericsMode::global())
}

/// [`pairwise_sq_dists`] under explicit [`Parallelism`] and [`NumericsMode`]
/// settings. Output rows are sharded across workers; for a fixed mode the
/// result is bit-identical for every worker count.
#[track_caller]
pub fn pairwise_sq_dists_with(
    a: &Matrix,
    b: &Matrix,
    par: Parallelism,
    mode: NumericsMode,
) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "pairwise_sq_dists: feature dims differ");
    let (n, m) = (a.rows(), b.rows());
    if n == 0 || m == 0 {
        return Matrix::zeros(n, m);
    }
    // `reduce_dot` in BitExact is the historical serial `Σ x·x` fold; Fast
    // swaps in the multi-accumulator tree.
    let a2: Vec<f64> = (0..a.rows()).map(|i| reduce_dot(a.row(i), a.row(i), mode)).collect();
    let b2: Vec<f64> = (0..b.rows()).map(|j| reduce_dot(b.row(j), b.row(j), mode)).collect();
    let cross = gemm_nt_mode(a, b, par, mode);
    let mut out = Matrix::zeros(n, m);
    let workers = effective_workers(par, n * m, MIN_ELEMS_PER_WORKER);
    let cross_s = cross.as_slice();
    par_for_row_chunks(out.as_mut_slice(), n, m, workers, |r0, r1, chunk| {
        for (k, row) in chunk.chunks_mut(m).enumerate() {
            let i = r0 + k;
            debug_assert!(i < r1);
            let cross_row = &cross_s[i * m..(i + 1) * m];
            for ((v, &c), &b2j) in row.iter_mut().zip(cross_row).zip(&b2) {
                *v = (a2[i] + b2j - 2.0 * c).max(0.0);
            }
        }
    });
    out
}

/// RBF (Gaussian) kernel matrix `exp(-||a_i - b_j||^2 / (2 sigma^2))` under
/// the process-global [`Parallelism`] and [`NumericsMode`] knobs.
#[track_caller]
pub fn rbf_kernel(a: &Matrix, b: &Matrix, sigma: f64) -> Matrix {
    rbf_kernel_with(a, b, sigma, Parallelism::global(), NumericsMode::global())
}

/// [`rbf_kernel`] under explicit [`Parallelism`] and [`NumericsMode`]
/// settings (bit-identical across worker counts for a fixed mode).
#[track_caller]
pub fn rbf_kernel_with(
    a: &Matrix,
    b: &Matrix,
    sigma: f64,
    par: Parallelism,
    mode: NumericsMode,
) -> Matrix {
    let mut d = pairwise_sq_dists_with(a, b, par, mode);
    let denom = 2.0 * sigma * sigma;
    let (n, m) = d.shape();
    let workers = effective_workers(par, n * m, MIN_ELEMS_PER_WORKER);
    par_for_row_chunks(d.as_mut_slice(), n, m, workers, |_, _, chunk| {
        for v in chunk {
            *v = (-*v / denom).exp();
        }
    });
    d
}

/// Median-heuristic bandwidth: the square root of half the median pairwise
/// squared distance between rows of `x`. Returns 1.0 for degenerate inputs
/// (fewer than two rows or all-identical rows).
pub fn median_bandwidth(x: &Matrix) -> f64 {
    let n = x.rows();
    if n < 2 {
        return 1.0;
    }
    let d = pairwise_sq_dists(x, x);
    let mut offdiag = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            offdiag.push(d[(i, j)]);
        }
    }
    offdiag.sort_by(f64::total_cmp);
    let median = offdiag[offdiag.len() / 2];
    if median <= 0.0 {
        1.0
    } else {
        (median / 2.0).sqrt()
    }
}

/// Centering matrix `H = I - 11^T / n` used by the HSIC estimator.
pub fn centering_matrix(n: usize) -> Matrix {
    let inv = 1.0 / n as f64;
    Matrix::from_fn(n, n, |i, j| if i == j { 1.0 - inv } else { -inv })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbrl_tensor::rng::{randn, rng_from_seed};

    #[test]
    fn sq_dists_match_manual() {
        let a = Matrix::from_vec(2, 2, vec![0.0, 0.0, 1.0, 1.0]);
        let b = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        let d = pairwise_sq_dists(&a, &b);
        assert!((d[(0, 0)] - 25.0).abs() < 1e-12);
        assert!((d[(1, 0)] - 13.0).abs() < 1e-12);
    }

    #[test]
    fn self_distances_are_zero_on_diagonal() {
        let mut rng = rng_from_seed(0);
        let x = randn(&mut rng, 6, 3);
        let d = pairwise_sq_dists(&x, &x);
        for i in 0..6 {
            assert!(d[(i, i)].abs() < 1e-9);
        }
        // Symmetry.
        for i in 0..6 {
            for j in 0..6 {
                assert!((d[(i, j)] - d[(j, i)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn rbf_kernel_is_one_on_diagonal_and_in_unit_interval() {
        let mut rng = rng_from_seed(1);
        let x = randn(&mut rng, 5, 2);
        let k = rbf_kernel(&x, &x, 1.0);
        for i in 0..5 {
            assert!((k[(i, i)] - 1.0).abs() < 1e-9);
            for j in 0..5 {
                assert!(k[(i, j)] > 0.0 && k[(i, j)] <= 1.0 + 1e-12);
            }
        }
    }

    #[test]
    fn median_bandwidth_scales_with_data_spread() {
        let mut rng = rng_from_seed(2);
        let x = randn(&mut rng, 40, 3);
        let wide = x.scale(10.0);
        assert!(median_bandwidth(&wide) > 5.0 * median_bandwidth(&x));
    }

    #[test]
    fn median_bandwidth_degenerate_inputs() {
        assert_eq!(median_bandwidth(&Matrix::zeros(1, 3)), 1.0);
        assert_eq!(median_bandwidth(&Matrix::ones(5, 2)), 1.0);
    }

    #[test]
    fn pairwise_kernels_accept_empty_inputs() {
        // Regression: the sharded fill must not assume a non-zero row width.
        let x = Matrix::ones(5, 3);
        let empty = Matrix::zeros(0, 3);
        assert_eq!(pairwise_sq_dists(&x, &empty).shape(), (5, 0));
        assert_eq!(pairwise_sq_dists(&empty, &x).shape(), (0, 5));
        assert_eq!(pairwise_sq_dists(&empty, &empty).shape(), (0, 0));
        assert_eq!(rbf_kernel(&x, &empty, 1.0).shape(), (5, 0));
        assert_eq!(rbf_kernel(&empty, &x, 1.0).shape(), (0, 5));
    }

    #[test]
    fn centering_matrix_removes_means() {
        let h = centering_matrix(4);
        let x = Matrix::from_vec(4, 1, vec![1.0, 2.0, 3.0, 10.0]);
        let centred = h.matmul(&x);
        assert!(centred.sum().abs() < 1e-12);
    }
}
