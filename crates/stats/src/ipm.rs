//! Integral probability metrics between treated and control groups, in plain
//! (evaluation) and graph-space (differentiable) forms.
//!
//! The Balancing Regularizer (Eq. 3–4 of the paper) measures the discrepancy
//! `dist(P^w_{Φ_c}, P^w_{Φ_t})` of the *weighted* representation
//! distributions. Three standard IPM instantiations are provided, matching
//! the CFR reference implementation:
//!
//! * [`IpmKind::MmdLin`] — squared distance of (weighted) group means;
//! * [`IpmKind::MmdRbf`] — full weighted kernel MMD²;
//! * [`IpmKind::Wasserstein`] — entropic Sinkhorn approximation,
//!   differentiated through the fixed-point iterations.

use sbrl_tensor::kernels::{
    effective_workers, par_map_values, reduce_dot, reduce_sum, NumericsMode, Parallelism,
};
use sbrl_tensor::{Graph, Matrix, TensorId};

use crate::kernels::{median_bandwidth, pairwise_sq_dists_with, rbf_kernel_with};

/// Minimum number of pairwise terms a worker must own before the plain IPM
/// reductions spawn it.
const MIN_PAIR_TERMS_PER_WORKER: usize = 1 << 14;

/// Which integral probability metric to use.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum IpmKind {
    /// Linear MMD: squared Euclidean distance of weighted group means.
    MmdLin,
    /// RBF-kernel MMD² with bandwidth `sigma` (`<= 0` selects the median
    /// heuristic on the pooled representation).
    MmdRbf {
        /// Kernel bandwidth; non-positive = median heuristic.
        sigma: f64,
    },
    /// Entropic-regularised Wasserstein distance via `iterations` Sinkhorn
    /// steps; `lambda` scales the inverse temperature (larger = sharper).
    Wasserstein {
        /// Inverse-temperature multiplier (CFR uses 10).
        lambda: f64,
        /// Number of Sinkhorn fixed-point iterations (CFR uses 10).
        iterations: usize,
    },
}

impl Default for IpmKind {
    fn default() -> Self {
        IpmKind::Wasserstein { lambda: 10.0, iterations: 10 }
    }
}

// ---------------------------------------------------------------------------
// Graph-space (differentiable) versions
// ---------------------------------------------------------------------------

/// Normalises a positive weight column to sum to one (graph-space).
fn normalize_weights(g: &mut Graph, w: TensorId) -> TensorId {
    let total = g.sum(w);
    let safe = g.add_scalar(total, 1e-12);
    g.div_scalar_of(w, safe)
}

/// Pairwise squared distances between rows of two graph matrices.
fn pairwise_sq_dists_graph(g: &mut Graph, a: TensorId, b: TensorId) -> TensorId {
    let a_sq = g.square(a);
    let a2 = g.sum_axis1(a_sq); // n x 1
    let b_sq = g.square(b);
    let b2_col = g.sum_axis1(b_sq); // m x 1
    let b2 = g.transpose(b2_col); // 1 x m
    let outer = g.col_plus_row(a2, b2); // n x m
    let bt = g.transpose(b);
    let cross = g.matmul(a, bt);
    let twice = g.scale(cross, -2.0);
    let d = g.add(outer, twice);
    // Numerical noise can push tiny distances below zero; clamp for sqrt.
    g.relu(d)
}

/// Differentiable weighted IPM between the rows of `phi` indexed by
/// `treated_idx` and `control_idx`.
///
/// `w` is an `n x 1` column of positive sample weights aligned with `phi`;
/// it is gathered and renormalised per group inside, so gradients flow into
/// both `phi` and `w`. Degenerate groups (fewer than one sample on either
/// side) yield a zero constant.
pub fn ipm_weighted_graph(
    g: &mut Graph,
    kind: IpmKind,
    phi: TensorId,
    w: TensorId,
    treated_idx: &[usize],
    control_idx: &[usize],
) -> TensorId {
    if treated_idx.is_empty() || control_idx.is_empty() {
        return g.scalar_const(0.0);
    }
    let phi_t = g.gather_rows(phi, treated_idx);
    let phi_c = g.gather_rows(phi, control_idx);
    let w_t_raw = g.gather_rows(w, treated_idx);
    let w_c_raw = g.gather_rows(w, control_idx);
    let w_t = normalize_weights(g, w_t_raw);
    let w_c = normalize_weights(g, w_c_raw);

    match kind {
        IpmKind::MmdLin => {
            let phi_t_w = g.mul_col(phi_t, w_t);
            let mean_t = g.sum_axis0(phi_t_w);
            let phi_c_w = g.mul_col(phi_c, w_c);
            let mean_c = g.sum_axis0(phi_c_w);
            g.sq_dist(mean_t, mean_c)
        }
        IpmKind::MmdRbf { sigma } => {
            let sigma = if sigma > 0.0 {
                sigma
            } else {
                // Median heuristic on the pooled current values (treated as a
                // constant w.r.t. differentiation, as is standard).
                let pooled = g.value(phi_t).vstack(g.value(phi_c));
                median_bandwidth(&pooled)
            };
            let ktt = rbf_kernel_graph(g, phi_t, phi_t, sigma);
            let kcc = rbf_kernel_graph(g, phi_c, phi_c, sigma);
            let ktc = rbf_kernel_graph(g, phi_t, phi_c, sigma);
            let tt = quadratic_form(g, w_t, ktt, w_t);
            let cc = quadratic_form(g, w_c, kcc, w_c);
            let tc = quadratic_form(g, w_t, ktc, w_c);
            let tc2 = g.scale(tc, -2.0);
            let s = g.add(tt, cc);
            let mmd2 = g.add(s, tc2);
            // The estimator can dip below zero for finite samples.
            g.relu(mmd2)
        }
        IpmKind::Wasserstein { lambda, iterations } => {
            sinkhorn_graph(g, phi_t, phi_c, w_t, w_c, lambda, iterations)
        }
    }
}

/// Differentiable *unweighted* IPM (unit weights) — the vanilla CFR penalty.
pub fn ipm_graph(
    g: &mut Graph,
    kind: IpmKind,
    phi: TensorId,
    treated_idx: &[usize],
    control_idx: &[usize],
) -> TensorId {
    let n = g.value(phi).rows();
    let ones = g.constant_full(n, 1, 1.0);
    ipm_weighted_graph(g, kind, phi, ones, treated_idx, control_idx)
}

fn rbf_kernel_graph(g: &mut Graph, a: TensorId, b: TensorId, sigma: f64) -> TensorId {
    let d = pairwise_sq_dists_graph(g, a, b);
    let scaled = g.scale(d, -1.0 / (2.0 * sigma * sigma));
    g.exp(scaled)
}

/// `u^T K v` for column vectors `u`, `v` -> `1 x 1`.
fn quadratic_form(g: &mut Graph, u: TensorId, k: TensorId, v: TensorId) -> TensorId {
    let kv = g.matmul(k, v);
    let ut = g.transpose(u);
    g.matmul(ut, kv)
}

/// Entropic-regularised OT cost, differentiated through the Sinkhorn loop.
///
/// Marginals `a` (`nt x 1`) and `b` (`nc x 1`) must each sum to one. The
/// temperature is set relative to the mean ground cost so `lambda` has a
/// scale-free meaning, mirroring the CFR implementation.
fn sinkhorn_graph(
    g: &mut Graph,
    phi_t: TensorId,
    phi_c: TensorId,
    a: TensorId,
    b: TensorId,
    lambda: f64,
    iterations: usize,
) -> TensorId {
    let d2 = pairwise_sq_dists_graph(g, phi_t, phi_c);
    let d2e = g.add_scalar(d2, 1e-10);
    let m = g.sqrt(d2e); // ground cost: Euclidean distance

    // Scale-free temperature: divide by the mean ground cost, kept inside the
    // tape so the whole construction is differentiable.
    let mean_cost = g.mean(m);
    let mean_safe = g.add_scalar(mean_cost, 1e-12);
    let m_rel = g.div_scalar_of(m, mean_safe);
    let neg = g.scale(m_rel, -lambda);
    let k = g.exp(neg); // nt x nc Gibbs kernel
    let eps = 1e-12;

    // Sinkhorn fixed point: u = a ./ (K v), v = b ./ (K^T u).
    let nt = g.value(a).rows();
    let nc = g.value(b).rows();
    let mut v = g.constant_full(nc, 1, 1.0);
    let mut u = g.constant_full(nt, 1, 1.0);
    for _ in 0..iterations {
        let kv = g.matmul(k, v);
        let kv_safe = g.add_scalar(kv, eps);
        u = g.div(a, kv_safe);
        let kt = g.transpose(k);
        let ktu = g.matmul(kt, u);
        let ktu_safe = g.add_scalar(ktu, eps);
        v = g.div(b, ktu_safe);
    }
    // Transport plan T = diag(u) K diag(v); cost = sum(T .* M).
    let vk = g.mul_col(k, u);
    let vt = g.transpose(v);
    let t_plan = g.mul_row(vk, vt);
    let tm = g.mul(t_plan, m);
    g.sum(tm)
}

// ---------------------------------------------------------------------------
// Plain (evaluation) versions
// ---------------------------------------------------------------------------

/// Plain weighted IPM on matrices (no gradients). Weights are renormalised
/// per group; pass `None` for unit weights.
///
/// Uses the process-global [`Parallelism`] and [`NumericsMode`] knobs; see
/// [`ipm_weighted_plain_with`] for explicit settings.
pub fn ipm_weighted_plain(
    kind: IpmKind,
    phi_t: &Matrix,
    phi_c: &Matrix,
    w_t: Option<&[f64]>,
    w_c: Option<&[f64]>,
) -> f64 {
    ipm_weighted_plain_with(
        kind,
        phi_t,
        phi_c,
        w_t,
        w_c,
        Parallelism::global(),
        NumericsMode::global(),
    )
}

/// [`ipm_weighted_plain`] under explicit [`Parallelism`] and
/// [`NumericsMode`] settings.
///
/// The O(n²) pairwise terms (kernel matrices, quadratic forms, Sinkhorn
/// fixed-point updates) are row-sharded; per-row reductions are computed by
/// exactly one worker. In [`NumericsMode::BitExact`] the folds keep the
/// historical serial order (bit-identical for every worker count); in
/// [`NumericsMode::Fast`] they switch to multi-accumulator / pairwise-tree
/// reductions whose shape depends only on operand lengths, so Fast is also
/// deterministic at every worker count — just not bit-identical to BitExact.
pub fn ipm_weighted_plain_with(
    kind: IpmKind,
    phi_t: &Matrix,
    phi_c: &Matrix,
    w_t: Option<&[f64]>,
    w_c: Option<&[f64]>,
    par: Parallelism,
    mode: NumericsMode,
) -> f64 {
    if phi_t.rows() == 0 || phi_c.rows() == 0 {
        return 0.0;
    }
    let wt = normalize_plain(w_t, phi_t.rows());
    let wc = normalize_plain(w_c, phi_c.rows());
    match kind {
        IpmKind::MmdLin => {
            let mt = weighted_mean_rows(phi_t, &wt);
            let mc = weighted_mean_rows(phi_c, &wc);
            mt.iter().zip(&mc).map(|(a, b)| (a - b) * (a - b)).sum()
        }
        IpmKind::MmdRbf { sigma } => {
            let sigma = if sigma > 0.0 { sigma } else { median_bandwidth(&phi_t.vstack(phi_c)) };
            let ktt = rbf_kernel_with(phi_t, phi_t, sigma, par, mode);
            let kcc = rbf_kernel_with(phi_c, phi_c, sigma, par, mode);
            let ktc = rbf_kernel_with(phi_t, phi_c, sigma, par, mode);
            let tt = quad_plain(&wt, &ktt, &wt, par, mode);
            let cc = quad_plain(&wc, &kcc, &wc, par, mode);
            let tc = quad_plain(&wt, &ktc, &wc, par, mode);
            (tt + cc - 2.0 * tc).max(0.0)
        }
        IpmKind::Wasserstein { lambda, iterations } => {
            sinkhorn_plain(phi_t, phi_c, &wt, &wc, lambda, iterations, par, mode)
        }
    }
}

/// Plain unweighted IPM on matrices.
pub fn ipm_plain(kind: IpmKind, phi_t: &Matrix, phi_c: &Matrix) -> f64 {
    ipm_weighted_plain(kind, phi_t, phi_c, None, None)
}

fn normalize_plain(w: Option<&[f64]>, n: usize) -> Vec<f64> {
    match w {
        None => vec![1.0 / n as f64; n],
        Some(w) => {
            assert_eq!(w.len(), n, "weight length mismatch");
            let total: f64 = w.iter().sum::<f64>().max(1e-12);
            w.iter().map(|x| x / total).collect()
        }
    }
}

fn weighted_mean_rows(x: &Matrix, w: &[f64]) -> Vec<f64> {
    let mut mean = vec![0.0; x.cols()];
    for (i, &wi) in w.iter().enumerate() {
        for (m, &v) in mean.iter_mut().zip(x.row(i)) {
            *m += wi * v;
        }
    }
    mean
}

/// `u^T K v`. The per-row inner products are sharded across workers
/// (`reduce_dot` keeps the historical serial fold in BitExact and the
/// multi-accumulator tree in Fast, both with the historical skip of exactly
/// zero `u[i]`). The final fold over rows runs in serial row order in
/// BitExact and as a pairwise tree in Fast, so the value is deterministic
/// for every [`Parallelism`] in both modes.
fn quad_plain(u: &[f64], k: &Matrix, v: &[f64], par: Parallelism, mode: NumericsMode) -> f64 {
    let workers = effective_workers(par, u.len() * v.len(), MIN_PAIR_TERMS_PER_WORKER);
    let row_terms = par_map_values(u.len(), workers, |i| {
        if u[i] == 0.0 {
            0.0
        } else {
            u[i] * reduce_dot(k.row(i), v, mode)
        }
    });
    if mode.is_fast() {
        return reduce_sum(&row_terms, mode);
    }
    let mut acc = 0.0;
    for (&ui, &term) in u.iter().zip(&row_terms) {
        if ui == 0.0 {
            continue;
        }
        acc += term;
    }
    acc
}

/// Entropic OT cost via Sinkhorn iterations. The `u` / `v` fixed-point
/// updates are independent per entry (each is one row/column inner product
/// followed by a division), so they shard across workers without changing
/// any floating-point chain. BitExact keeps the historical serial folds
/// (bit-identical across worker counts); Fast switches the inner products
/// and the transport-cost reduction to multi-accumulator / pairwise trees
/// whose shape depends only on operand lengths.
#[allow(clippy::too_many_arguments)]
fn sinkhorn_plain(
    phi_t: &Matrix,
    phi_c: &Matrix,
    a: &[f64],
    b: &[f64],
    lambda: f64,
    iterations: usize,
    par: Parallelism,
    mode: NumericsMode,
) -> f64 {
    let m = pairwise_sq_dists_with(phi_t, phi_c, par, mode).map(|v| (v + 1e-10).sqrt());
    let mean_cost = m.mean().max(1e-12);
    let k = m.map(|v| (-lambda * v / mean_cost).exp());
    let (nt, nc) = k.shape();
    let workers = effective_workers(par, nt * nc, MIN_PAIR_TERMS_PER_WORKER);
    let mut u = vec![1.0; nt];
    let mut v = vec![1.0; nc];
    for _ in 0..iterations {
        u = par_map_values(nt, workers, |i| {
            let kv = reduce_dot(k.row(i), &v, mode);
            a[i] / (kv + 1e-12)
        });
        v = par_map_values(nc, workers, |j| {
            let ktu = if mode.is_fast() {
                col_dot_fast(k.as_slice(), nc, j, &u)
            } else {
                (0..nt).map(|i| k[(i, j)] * u[i]).sum()
            };
            b[j] / (ktu + 1e-12)
        });
    }
    if mode.is_fast() {
        let row_costs =
            par_map_values(nt, workers, |i| u[i] * triple_dot_fast(k.row(i), &v, m.row(i)));
        return reduce_sum(&row_costs, mode);
    }
    let mut cost = 0.0;
    for i in 0..nt {
        for j in 0..nc {
            cost += u[i] * k[(i, j)] * v[j] * m[(i, j)];
        }
    }
    cost
}

/// Fast-mode column inner product `Σ_i k[i·stride + col] · u[i]` with four
/// independent accumulators; the reduction shape depends only on `u.len()`.
#[inline]
fn col_dot_fast(ks: &[f64], stride: usize, col: usize, u: &[f64]) -> f64 {
    let n = u.len();
    let mut acc = [0.0f64; 4];
    let mut i = 0;
    while i + 4 <= n {
        acc[0] += ks[i * stride + col] * u[i];
        acc[1] += ks[(i + 1) * stride + col] * u[i + 1];
        acc[2] += ks[(i + 2) * stride + col] * u[i + 2];
        acc[3] += ks[(i + 3) * stride + col] * u[i + 3];
        i += 4;
    }
    while i < n {
        acc[0] += ks[i * stride + col] * u[i];
        i += 1;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// Fast-mode elementwise triple product `Σ_j k[j] · v[j] · m[j]` with four
/// independent accumulators; the reduction shape depends only on the length.
#[inline]
fn triple_dot_fast(k: &[f64], v: &[f64], m: &[f64]) -> f64 {
    let n = k.len().min(v.len()).min(m.len());
    let mut acc = [0.0f64; 4];
    let mut j = 0;
    while j + 4 <= n {
        acc[0] += k[j] * v[j] * m[j];
        acc[1] += k[j + 1] * v[j + 1] * m[j + 1];
        acc[2] += k[j + 2] * v[j + 2] * m[j + 2];
        acc[3] += k[j + 3] * v[j + 3] * m[j + 3];
        j += 4;
    }
    while j < n {
        acc[0] += k[j] * v[j] * m[j];
        j += 1;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbrl_tensor::rng::{randn, rng_from_seed};

    fn all_kinds() -> [IpmKind; 3] {
        [
            IpmKind::MmdLin,
            IpmKind::MmdRbf { sigma: 1.0 },
            IpmKind::Wasserstein { lambda: 10.0, iterations: 10 },
        ]
    }

    #[test]
    fn identical_distributions_give_near_zero_ipm() {
        let mut rng = rng_from_seed(0);
        let x = randn(&mut rng, 40, 3);
        for kind in all_kinds() {
            let v = ipm_plain(kind, &x, &x);
            assert!(v.abs() < 0.3, "{kind:?} on identical samples = {v}");
        }
    }

    #[test]
    fn shifted_distributions_give_larger_ipm() {
        let mut rng = rng_from_seed(1);
        let a = randn(&mut rng, 50, 3);
        let b = randn(&mut rng, 50, 3).add_scalar(3.0);
        let c = randn(&mut rng, 50, 3);
        for kind in all_kinds() {
            let far = ipm_plain(kind, &a, &b);
            let near = ipm_plain(kind, &a, &c);
            assert!(far > near, "{kind:?}: far {far} should exceed near {near}");
        }
    }

    #[test]
    fn graph_and_plain_versions_agree() {
        let mut rng = rng_from_seed(2);
        let phi = randn(&mut rng, 30, 4);
        let treated: Vec<usize> = (0..15).collect();
        let control: Vec<usize> = (15..30).collect();
        let phi_t = phi.select_rows(&treated);
        let phi_c = phi.select_rows(&control);
        for kind in all_kinds() {
            let plain = ipm_plain(kind, &phi_t, &phi_c);
            let mut g = Graph::new();
            let p = g.constant(phi.clone());
            let v = ipm_graph(&mut g, kind, p, &treated, &control);
            assert!(
                (g.scalar(v) - plain).abs() < 1e-9,
                "{kind:?}: graph {} vs plain {plain}",
                g.scalar(v)
            );
        }
    }

    #[test]
    fn weighting_can_remove_imbalance() {
        // Control group is a 2:1 mixture of two clusters; treated is 1:1.
        // Upweighting the under-represented control cluster should shrink the
        // linear MMD.
        let mut rng = rng_from_seed(3);
        let c0 = randn(&mut rng, 20, 2); // cluster at 0
        let c1 = randn(&mut rng, 10, 2).add_scalar(4.0); // cluster at 4
        let control = c0.vstack(&c1);
        let t0 = randn(&mut rng, 15, 2);
        let t1 = randn(&mut rng, 15, 2).add_scalar(4.0);
        let treated = t0.vstack(&t1);

        let unweighted = ipm_plain(IpmKind::MmdLin, &treated, &control);
        // Weight the 10 samples of cluster-1 twice as much.
        let w_c: Vec<f64> = (0..30).map(|i| if i < 20 { 1.0 } else { 2.0 }).collect();
        let weighted = ipm_weighted_plain(IpmKind::MmdLin, &treated, &control, None, Some(&w_c));
        assert!(
            weighted < unweighted * 0.5,
            "reweighting should reduce imbalance: {weighted} vs {unweighted}"
        );
    }

    #[test]
    fn empty_groups_yield_zero() {
        let x = Matrix::ones(4, 2);
        assert_eq!(ipm_plain(IpmKind::MmdLin, &Matrix::zeros(0, 2), &x), 0.0);
        let mut g = Graph::new();
        let p = g.constant(x);
        let ones = g.constant(Matrix::ones(4, 1));
        let v = ipm_weighted_graph(&mut g, IpmKind::MmdLin, p, ones, &[], &[0, 1]);
        assert_eq!(g.scalar(v), 0.0);
    }

    #[test]
    fn sinkhorn_transport_plan_cost_is_nonnegative_and_finite() {
        let mut rng = rng_from_seed(4);
        let a = randn(&mut rng, 12, 3);
        let b = randn(&mut rng, 18, 3).add_scalar(1.0);
        let v = ipm_plain(IpmKind::Wasserstein { lambda: 10.0, iterations: 20 }, &a, &b);
        assert!(v.is_finite() && v > 0.0);
    }

    #[test]
    fn gradients_flow_through_all_ipm_kinds() {
        use sbrl_tensor::gradcheck::check_gradient;
        let mut rng = rng_from_seed(5);
        let phi = randn(&mut rng, 10, 3);
        let treated: Vec<usize> = (0..5).collect();
        let control: Vec<usize> = (5..10).collect();
        for kind in all_kinds() {
            let t = treated.clone();
            let c = control.clone();
            check_gradient(&move |g, p| ipm_graph(g, kind, p, &t, &c), &phi, 1e-5, 2e-4)
                .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        }
    }

    #[test]
    fn gradients_flow_into_weights() {
        use sbrl_tensor::gradcheck::check_gradient;
        let mut rng = rng_from_seed(6);
        let phi = randn(&mut rng, 10, 3);
        let treated: Vec<usize> = (0..5).collect();
        let control: Vec<usize> = (5..10).collect();
        // Positive weights around 1.
        let w0 = randn(&mut rng, 10, 1).map(|v| 1.0 + 0.3 * v.tanh());
        for kind in all_kinds() {
            let t = treated.clone();
            let c = control.clone();
            let phi_c = phi.clone();
            check_gradient(
                &move |g, w| {
                    let p = g.constant(phi_c.clone());
                    ipm_weighted_graph(g, kind, p, w, &t, &c)
                },
                &w0,
                1e-5,
                2e-4,
            )
            .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        }
    }
}
